"""Differential property tests: cone simulator vs. the golden model, and
the vectorized simulation paths vs. their preserved scalar oracles.

Two layers of evidence:

* *semantic* (ISSUE 3 satellite) — the functional cone simulator must
  agree with the whole-frame golden executor for randomized frame
  geometries, simulator modes, and algorithm picks.  The architectural
  contract (see :class:`FunctionalConeSimulator`): every output element
  whose dependency cone does not touch the frame border is bit-identical
  to Algorithm 1's result; border elements may differ only inside the
  clamp band of width ``radius * iterations``.
* *implementation* (ISSUE 8 tentpole) — every vectorized path
  (``GoldenExecutor.step``, both cone-simulator modes, ``run_batch``, the
  cycle simulator, the frame-buffer batch evaluator) must be
  **bit-identical** — not merely close — to the retained ``*_scalar``
  walk on the same inputs, including degenerate 1×1 and 1×N frames.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.algorithms import ALGORITHMS as REGISTERED_ALGORITHMS
from repro.algorithms import get_algorithm
from repro.architecture.template import ConeArchitecture
from repro.estimation.throughput_model import ConePerformance
from repro.simulation.cone_simulator import (
    FunctionalConeSimulator,
    TileCascadeCycleSimulator,
)
from repro.simulation.frame import FrameSet
from repro.simulation.framebuffer_baseline import FrameBufferArchitecture
from repro.simulation.golden import GoldenExecutor
from repro.simulation.vectorized import supports_vectorized
from repro.synth.fpga_device import VIRTEX6_XC6VLX760

#: Single-state-field algorithms cheap enough for randomized sweeps (the
#: multi-field Chambolle case is covered by its own dedicated test below).
ALGORITHMS = ("blur", "jacobi", "heat", "erode")

#: Every registered algorithm, multi-field kernels included: the
#: bit-identity suite must cover whatever the registry can simulate.
ALL_ALGORITHMS = tuple(sorted(REGISTERED_ALGORITHMS))


def interior(array, margin):
    return array[..., margin:-margin, margin:-margin]


def run_differential(algorithm, height, width, seed, iterations, window,
                     mode):
    """Compare simulator and golden output on the cone-interior region."""
    kernel = get_algorithm(algorithm).kernel()
    margin = kernel.radius * iterations + 1
    assume(height > 2 * margin and width > 2 * margin)
    frames = FrameSet.for_kernel(kernel, height, width, seed=seed)
    golden = GoldenExecutor(kernel).run(frames, iterations)
    simulated = FunctionalConeSimulator(kernel).run(frames, iterations,
                                                    window, mode=mode)
    for name in kernel.state_field_names:
        np.testing.assert_allclose(
            interior(simulated[name].data, margin),
            interior(golden[name].data, margin),
            rtol=1e-9, atol=1e-12, err_msg=f"{algorithm}/{name} ({mode})")
    # outside the interior the simulator must still return finite values of
    # the right shape (the clamp band is approximate, never garbage)
    for name in kernel.state_field_names:
        assert simulated[name].data.shape == golden[name].data.shape
        assert np.all(np.isfinite(simulated[name].data))


@given(algorithm=st.sampled_from(ALGORITHMS),
       height=st.integers(min_value=7, max_value=16),
       width=st.integers(min_value=7, max_value=16),
       seed=st.integers(min_value=0, max_value=2**16),
       iterations=st.integers(min_value=1, max_value=3),
       window=st.integers(min_value=1, max_value=5))
@settings(max_examples=30, deadline=None)
def test_region_mode_matches_golden(algorithm, height, width, seed,
                                    iterations, window):
    """Region mode (NumPy tile evaluation) vs. golden, randomized."""
    run_differential(algorithm, height, width, seed, iterations, window,
                     mode="region")


@given(algorithm=st.sampled_from(ALGORITHMS),
       height=st.integers(min_value=7, max_value=11),
       width=st.integers(min_value=7, max_value=11),
       seed=st.integers(min_value=0, max_value=2**16),
       iterations=st.integers(min_value=1, max_value=2),
       window=st.integers(min_value=1, max_value=3))
@settings(max_examples=10, deadline=None)
def test_expression_mode_matches_golden(algorithm, height, width, seed,
                                        iterations, window):
    """Expression mode exercises the full symbolic cone DAG — the strongest
    differential check of the symbolic layer, on a reduced input range
    (scalar DAG evaluation is orders of magnitude slower than NumPy)."""
    run_differential(algorithm, height, width, seed, iterations, window,
                     mode="expression")


@given(height=st.integers(min_value=9, max_value=13),
       width=st.integers(min_value=9, max_value=13),
       seed=st.integers(min_value=0, max_value=2**16),
       window=st.integers(min_value=1, max_value=3))
@settings(max_examples=6, deadline=None)
def test_multi_field_chambolle_matches_golden(height, width, seed, window):
    """The multi-field Chambolle kernel: every state field must agree."""
    run_differential("chamb", height, width, seed, iterations=2,
                     window=window, mode="region")


@given(height=st.integers(min_value=8, max_value=14),
       width=st.integers(min_value=8, max_value=14),
       seed=st.integers(min_value=0, max_value=2**16),
       iterations=st.integers(min_value=1, max_value=2),
       window_a=st.integers(min_value=1, max_value=4),
       window_b=st.integers(min_value=1, max_value=4))
@settings(max_examples=15, deadline=None)
def test_modes_and_tilings_agree_with_each_other(height, width, seed,
                                                 iterations, window_a,
                                                 window_b):
    """Expression and region modes are two implementations of the same
    semantics: full-frame outputs (border band included) must match for any
    tiling — the border behaviour is defined by the architecture (clamped
    level-0 reads), not by the evaluation strategy."""
    kernel = get_algorithm("blur").kernel()
    frames = FrameSet.for_kernel(kernel, height, width, seed=seed)
    simulator = FunctionalConeSimulator(kernel)
    expression = simulator.run(frames, iterations, window_a,
                               mode="expression")
    region = simulator.run(frames, iterations, window_a, mode="region")
    np.testing.assert_allclose(expression["f"].data, region["f"].data,
                               rtol=1e-9, atol=1e-12)
    # tiling is an implementation detail: the interior is tile-invariant
    other = simulator.run(frames, iterations, window_b, mode="region")
    margin = kernel.radius * iterations + 1
    assume(height > 2 * margin and width > 2 * margin)
    np.testing.assert_allclose(interior(region["f"].data, margin),
                               interior(other["f"].data, margin),
                               rtol=1e-9, atol=1e-12)


# ---------------------------------------------------------------------- #
# vectorized paths vs. their scalar oracles (bit-identity, not closeness)


def assert_frames_identical(vectorized, scalar, context):
    for name in vectorized.names():
        assert np.array_equal(vectorized[name].data, scalar[name].data), (
            f"{context}: field {name!r} diverged from the scalar oracle "
            f"(max abs diff "
            f"{np.max(np.abs(vectorized[name].data - scalar[name].data))})")


@given(algorithm=st.sampled_from(ALL_ALGORITHMS),
       height=st.integers(min_value=1, max_value=12),
       width=st.integers(min_value=1, max_value=12),
       seed=st.integers(min_value=0, max_value=2**16),
       iterations=st.integers(min_value=0, max_value=2),
       window=st.integers(min_value=1, max_value=5))
@settings(max_examples=25, deadline=None)
def test_region_mode_bit_identical_to_scalar(algorithm, height, width, seed,
                                             iterations, window):
    """Region mode: the stacked clamped-gather evaluation must reproduce
    the per-tile scalar walk bit for bit — degenerate 1×1 and 1×N frames
    (where the halo is wider than the frame) included."""
    kernel = get_algorithm(algorithm).kernel()
    frames = FrameSet.for_kernel(kernel, height, width, seed=seed)
    simulator = FunctionalConeSimulator(kernel)
    vectorized = simulator.run(frames, iterations, window, mode="region")
    scalar = simulator.run_scalar(frames, iterations, window, mode="region")
    assert_frames_identical(vectorized, scalar,
                            f"{algorithm} region {height}x{width} "
                            f"w{window} i{iterations}")


@given(algorithm=st.sampled_from(ALL_ALGORITHMS),
       height=st.integers(min_value=1, max_value=9),
       width=st.integers(min_value=1, max_value=9),
       seed=st.integers(min_value=0, max_value=2**16),
       iterations=st.integers(min_value=1, max_value=2),
       window=st.integers(min_value=1, max_value=3))
@settings(max_examples=10, deadline=None)
def test_expression_mode_bit_identical_to_scalar(algorithm, height, width,
                                                 seed, iterations, window):
    """Expression mode: one ``evaluate_array`` pass over every cone DAG vs.
    the per-tile scalar DAG evaluation (reduced ranges — the scalar side
    re-evaluates the DAG once per tile)."""
    kernel = get_algorithm(algorithm).kernel()
    frames = FrameSet.for_kernel(kernel, height, width, seed=seed)
    simulator = FunctionalConeSimulator(kernel)
    vectorized = simulator.run(frames, iterations, window, mode="expression")
    scalar = simulator.run_scalar(frames, iterations, window,
                                  mode="expression")
    assert_frames_identical(vectorized, scalar,
                            f"{algorithm} expression {height}x{width} "
                            f"w{window} i{iterations}")


@given(algorithm=st.sampled_from(ALL_ALGORITHMS),
       height=st.integers(min_value=1, max_value=8),
       width=st.integers(min_value=1, max_value=8),
       seed=st.integers(min_value=0, max_value=2**16),
       iterations=st.integers(min_value=0, max_value=2))
@settings(max_examples=10, deadline=None)
def test_golden_step_bit_identical_to_scalar(algorithm, height, width, seed,
                                             iterations):
    """The whole-frame golden step vs. its per-pixel scalar oracle."""
    kernel = get_algorithm(algorithm).kernel()
    frames = FrameSet.for_kernel(kernel, height, width, seed=seed)
    executor = GoldenExecutor(kernel)
    vectorized = executor.run(frames, iterations)
    scalar = executor.run_scalar(frames, iterations)
    assert_frames_identical(vectorized, scalar,
                            f"golden {algorithm} {height}x{width} "
                            f"i{iterations}")


@given(window=st.integers(min_value=1, max_value=8),
       depth=st.integers(min_value=1, max_value=4),
       levels=st.integers(min_value=1, max_value=3),
       instances=st.integers(min_value=1, max_value=4),
       frame_width=st.integers(min_value=1, max_value=300),
       frame_height=st.integers(min_value=1, max_value=300),
       latency=st.integers(min_value=1, max_value=12))
@settings(max_examples=30, deadline=None)
def test_cycle_simulator_bit_identical_to_scalar(window, depth, levels,
                                                 instances, frame_width,
                                                 frame_height, latency):
    """The one-representative-tile cycle aggregation vs. the per-tile walk:
    every count and cycle total must be *exactly* equal (the sequential
    cumsum fold reproduces the scalar ``+=`` rounding sequence)."""
    architecture = ConeArchitecture(
        kernel_name="blur", window_side=window,
        level_depths=[depth] * levels,
        cone_counts={depth: instances}, radius=1)
    performance = {d: ConePerformance(d, window, latency)
                   for d in architecture.distinct_depths}
    simulator = TileCascadeCycleSimulator(VIRTEX6_XC6VLX760)
    fast = simulator.simulate_frame(architecture, performance,
                                    frame_width, frame_height)
    slow = simulator.simulate_frame_scalar(architecture, performance,
                                           frame_width, frame_height)
    assert fast.tiles == slow.tiles
    assert fast.compute_cycles == slow.compute_cycles
    assert fast.transfer_cycles == slow.transfer_cycles
    assert fast.total_cycles == slow.total_cycles
    assert fast.offchip_bytes == slow.offchip_bytes
    assert fast.onchip_peak_bytes == slow.onchip_peak_bytes
    assert fast.seconds_per_frame == slow.seconds_per_frame
    assert fast.frames_per_second == slow.frames_per_second


@given(widths=st.lists(st.integers(min_value=1, max_value=4000),
                       min_size=1, max_size=8),
       heights=st.lists(st.integers(min_value=1, max_value=4000),
                        min_size=1, max_size=8),
       iterations=st.integers(min_value=0, max_value=40))
@settings(max_examples=25, deadline=None)
def test_framebuffer_batch_bit_identical_to_scalar(widths, heights,
                                                   iterations):
    """``evaluate_batch`` columns vs. element-wise ``evaluate`` calls."""
    size = min(len(widths), len(heights))
    widths, heights = widths[:size], heights[:size]
    baseline = FrameBufferArchitecture(get_algorithm("blur").kernel())
    columns = baseline.evaluate_batch(widths, heights, iterations)
    for index, (w, h) in enumerate(zip(widths, heights)):
        report = baseline.evaluate(w, h, iterations)
        assert bool(columns["frame_fits_onchip"][index]) \
            == report.frame_fits_onchip
        assert int(columns["onchip_bytes_required"][index]) \
            == report.onchip_bytes_required
        assert float(columns["offchip_bytes_per_frame"][index]) \
            == report.offchip_bytes_per_frame
        assert float(columns["compute_cycles_per_frame"][index]) \
            == report.compute_cycles_per_frame
        assert float(columns["transfer_cycles_per_frame"][index]) \
            == report.transfer_cycles_per_frame
        assert float(columns["seconds_per_frame"][index]) \
            == report.seconds_per_frame
        assert float(columns["frames_per_second"][index]) \
            == report.frames_per_second


# ---------------------------------------------------------------------- #
# batched multi-frame runs


@pytest.mark.parametrize("batch_size", [1, 2, 7])
def test_run_batch_matches_independent_runs(batch_size):
    """``run_batch`` over K frame sets (mixed shapes, shuffled order) is
    element-identical to K independent ``run`` calls, in input order."""
    kernel = get_algorithm("blur").kernel()
    simulator = FunctionalConeSimulator(kernel)
    shapes = [(9, 7), (1, 5), (12, 12), (4, 9), (1, 1), (7, 7), (5, 13)]
    rng = np.random.default_rng(batch_size)
    order = rng.permutation(len(shapes))[:batch_size]
    frame_sets = [FrameSet.for_kernel(kernel, *shapes[i], seed=100 + int(i))
                  for i in order]
    batched = simulator.run_batch(frame_sets, iterations=2, window_side=3,
                                  mode="region")
    assert len(batched) == batch_size
    for position, frames in enumerate(frame_sets):
        single = simulator.run(frames, 2, 3, mode="region")
        assert_frames_identical(batched[position], single,
                                f"batch[{position}] of {batch_size}")


def test_run_batch_multi_field():
    """Batching must carry every state field of a multi-field kernel."""
    kernel = get_algorithm("chamb").kernel()
    simulator = FunctionalConeSimulator(kernel)
    frame_sets = [FrameSet.for_kernel(kernel, 8, 6, seed=s) for s in (1, 2)]
    batched = simulator.run_batch(frame_sets, iterations=1, window_side=2,
                                  mode="region")
    for position, frames in enumerate(frame_sets):
        single = simulator.run(frames, 1, 2, mode="region")
        assert_frames_identical(batched[position], single,
                                f"chamb batch[{position}]")


# ---------------------------------------------------------------------- #
# the override-fallback contract


class _PaddedRegionSimulator(FunctionalConeSimulator):
    """Subclass overriding a scalar hook: must disable the fast path."""

    def _evaluate_tile_region(self, *args, **kwargs):
        result = super()._evaluate_tile_region(*args, **kwargs)
        return {name: arrays + 1000.0 for name, arrays in result.items()}


def test_overridden_scalar_hook_disables_vectorized_path():
    kernel = get_algorithm("blur").kernel()
    custom = _PaddedRegionSimulator(kernel)
    assert supports_vectorized(FunctionalConeSimulator(kernel))
    assert not supports_vectorized(custom)
    frames = FrameSet.for_kernel(kernel, 6, 6, seed=3)
    result = custom.run(frames, 1, 2, mode="region")
    # the override's +1000 must be visible: run() fell back to the scalar
    # walk instead of silently bypassing the subclass's semantics
    assert float(result["f"].data.min()) > 900.0


def test_cycle_simulator_override_fallback():
    import dataclasses

    class _Tweaked(TileCascadeCycleSimulator):
        def simulate_frame_scalar(self, architecture, cone_performance,
                                  frame_width, frame_height):
            result = super().simulate_frame_scalar(
                architecture, cone_performance, frame_width, frame_height)
            return dataclasses.replace(result, architecture_label="tweaked")

    architecture = ConeArchitecture(kernel_name="blur", window_side=4,
                                    level_depths=[2, 2],
                                    cone_counts={2: 2}, radius=1)
    performance = {2: ConePerformance(2, 4, 4)}
    tweaked = _Tweaked(VIRTEX6_XC6VLX760)
    assert not supports_vectorized(tweaked)
    result = tweaked.simulate_frame(architecture, performance, 64, 64)
    assert result.architecture_label == "tweaked"
