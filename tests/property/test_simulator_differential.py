"""Differential property tests: cone simulator vs. the golden model.

ISSUE 3 satellite — beyond the fixed cases in ``tests/simulation/``, the
functional cone simulator must agree with the whole-frame golden executor
for *randomized* frame geometries, simulator modes, and algorithm picks.
The architectural contract (see :class:`FunctionalConeSimulator`): every
output element whose dependency cone does not touch the frame border is
bit-identical to Algorithm 1's result; border elements may differ only
inside the clamp band of width ``radius * iterations``.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.algorithms import get_algorithm
from repro.simulation.cone_simulator import FunctionalConeSimulator
from repro.simulation.frame import FrameSet
from repro.simulation.golden import GoldenExecutor

#: Single-state-field algorithms cheap enough for randomized sweeps (the
#: multi-field Chambolle case is covered by its own dedicated test below).
ALGORITHMS = ("blur", "jacobi", "heat", "erode")


def interior(array, margin):
    return array[..., margin:-margin, margin:-margin]


def run_differential(algorithm, height, width, seed, iterations, window,
                     mode):
    """Compare simulator and golden output on the cone-interior region."""
    kernel = get_algorithm(algorithm).kernel()
    margin = kernel.radius * iterations + 1
    assume(height > 2 * margin and width > 2 * margin)
    frames = FrameSet.for_kernel(kernel, height, width, seed=seed)
    golden = GoldenExecutor(kernel).run(frames, iterations)
    simulated = FunctionalConeSimulator(kernel).run(frames, iterations,
                                                    window, mode=mode)
    for name in kernel.state_field_names:
        np.testing.assert_allclose(
            interior(simulated[name].data, margin),
            interior(golden[name].data, margin),
            rtol=1e-9, atol=1e-12, err_msg=f"{algorithm}/{name} ({mode})")
    # outside the interior the simulator must still return finite values of
    # the right shape (the clamp band is approximate, never garbage)
    for name in kernel.state_field_names:
        assert simulated[name].data.shape == golden[name].data.shape
        assert np.all(np.isfinite(simulated[name].data))


@given(algorithm=st.sampled_from(ALGORITHMS),
       height=st.integers(min_value=7, max_value=16),
       width=st.integers(min_value=7, max_value=16),
       seed=st.integers(min_value=0, max_value=2**16),
       iterations=st.integers(min_value=1, max_value=3),
       window=st.integers(min_value=1, max_value=5))
@settings(max_examples=30, deadline=None)
def test_region_mode_matches_golden(algorithm, height, width, seed,
                                    iterations, window):
    """Region mode (NumPy tile evaluation) vs. golden, randomized."""
    run_differential(algorithm, height, width, seed, iterations, window,
                     mode="region")


@given(algorithm=st.sampled_from(ALGORITHMS),
       height=st.integers(min_value=7, max_value=11),
       width=st.integers(min_value=7, max_value=11),
       seed=st.integers(min_value=0, max_value=2**16),
       iterations=st.integers(min_value=1, max_value=2),
       window=st.integers(min_value=1, max_value=3))
@settings(max_examples=10, deadline=None)
def test_expression_mode_matches_golden(algorithm, height, width, seed,
                                        iterations, window):
    """Expression mode exercises the full symbolic cone DAG — the strongest
    differential check of the symbolic layer, on a reduced input range
    (scalar DAG evaluation is orders of magnitude slower than NumPy)."""
    run_differential(algorithm, height, width, seed, iterations, window,
                     mode="expression")


@given(height=st.integers(min_value=9, max_value=13),
       width=st.integers(min_value=9, max_value=13),
       seed=st.integers(min_value=0, max_value=2**16),
       window=st.integers(min_value=1, max_value=3))
@settings(max_examples=6, deadline=None)
def test_multi_field_chambolle_matches_golden(height, width, seed, window):
    """The multi-field Chambolle kernel: every state field must agree."""
    run_differential("chamb", height, width, seed, iterations=2,
                     window=window, mode="region")


@given(height=st.integers(min_value=8, max_value=14),
       width=st.integers(min_value=8, max_value=14),
       seed=st.integers(min_value=0, max_value=2**16),
       iterations=st.integers(min_value=1, max_value=2),
       window_a=st.integers(min_value=1, max_value=4),
       window_b=st.integers(min_value=1, max_value=4))
@settings(max_examples=15, deadline=None)
def test_modes_and_tilings_agree_with_each_other(height, width, seed,
                                                 iterations, window_a,
                                                 window_b):
    """Expression and region modes are two implementations of the same
    semantics: full-frame outputs (border band included) must match for any
    tiling — the border behaviour is defined by the architecture (clamped
    level-0 reads), not by the evaluation strategy."""
    kernel = get_algorithm("blur").kernel()
    frames = FrameSet.for_kernel(kernel, height, width, seed=seed)
    simulator = FunctionalConeSimulator(kernel)
    expression = simulator.run(frames, iterations, window_a,
                               mode="expression")
    region = simulator.run(frames, iterations, window_a, mode="region")
    np.testing.assert_allclose(expression["f"].data, region["f"].data,
                               rtol=1e-9, atol=1e-12)
    # tiling is an implementation detail: the interior is tile-invariant
    other = simulator.run(frames, iterations, window_b, mode="region")
    margin = kernel.radius * iterations + 1
    assume(height > 2 * margin and width > 2 * margin)
    np.testing.assert_allclose(interior(region["f"].data, margin),
                               interior(other["f"].data, margin),
                               rtol=1e-9, atol=1e-12)
