"""Property tests: ``estimate_batch()`` ≡ the scalar estimates (ISSUE 4).

The scalar paths of both estimation models delegate to their batch twins,
so these tests pin the batch implementations against *independent* scalar
references written out longhand here (the pre-columnar recursions), and
additionally assert that evaluating a whole count axis at once is
bit-identical to evaluating its elements one by one.  Equality is exact
(``==``, not approx): the columnar engine's byte-identical-results
guarantee rests on it.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.architecture.enumeration import single_depth_split
from repro.architecture.template import ConeArchitecture
from repro.estimation.area_model import CalibrationPoint, RegisterAreaModel
from repro.estimation.throughput_model import ConePerformance, ThroughputModel
from repro.ir.operators import DataFormat
from repro.synth.fpga_device import VIRTEX6_XC6VLX760


# ---------------------------------------------------------------------- #
# area model


def reference_estimate_series(model, register_counts):
    """The pre-columnar Equation-1 recursion, written out longhand."""
    anchor = model.anchor
    keys = sorted(register_counts)
    estimates = {anchor.key: anchor.actual_area_luts}
    previous_key, previous_regs = anchor.key, anchor.register_count
    for key in keys:
        if key <= anchor.key:
            continue
        regs = register_counts[key]
        estimates[key] = (estimates[previous_key]
                          + (regs - previous_regs)
                          * model.size_reg_luts * model.alpha)
        previous_key, previous_regs = key, regs
    previous_key, previous_regs = anchor.key, anchor.register_count
    for key in sorted((k for k in keys if k < anchor.key), reverse=True):
        regs = register_counts[key]
        estimates[key] = (estimates[previous_key]
                          - (previous_regs - regs)
                          * model.size_reg_luts * model.alpha)
        previous_key, previous_regs = key, regs
    return {key: estimates[key] for key in keys}


area_families = st.builds(
    lambda entries, anchor_area, slope: (entries, anchor_area, slope),
    st.dictionaries(st.integers(min_value=1, max_value=400),
                    st.integers(min_value=1, max_value=100_000),
                    min_size=2, max_size=24),
    st.floats(min_value=10.0, max_value=1e5, allow_nan=False),
    st.floats(min_value=0.05, max_value=40.0, allow_nan=False))


@given(area_families)
@settings(max_examples=120, deadline=None)
def test_area_estimate_batch_matches_scalar_recursion_exactly(family):
    register_counts, anchor_area, slope = family
    keys = sorted(register_counts)
    first, second = keys[0], keys[1]
    if register_counts[first] == register_counts[second]:
        register_counts[second] = register_counts[first] + 1
    model = RegisterAreaModel(size_reg_luts=4.0)
    # two reference syntheses consistent with a positive alpha
    growth = abs(register_counts[second] - register_counts[first]) * slope
    low, high = sorted((register_counts[first], register_counts[second]))
    if register_counts[first] == high:
        # anchor (smallest key) has the larger register count: area shrinks
        model.calibrate([
            CalibrationPoint(first, register_counts[first],
                             anchor_area + growth),
            CalibrationPoint(second, register_counts[second], anchor_area),
        ])
    else:
        model.calibrate([
            CalibrationPoint(first, register_counts[first], anchor_area),
            CalibrationPoint(second, register_counts[second],
                             anchor_area + growth),
        ])

    reference = reference_estimate_series(model, register_counts)
    batch = model.estimate_batch(
        np.asarray(keys, dtype=np.int64),
        np.asarray([register_counts[k] for k in keys], dtype=np.int64))
    assert [float(value) for value in batch] == [reference[k] for k in keys]

    series = model.estimate_series(register_counts)
    assert [e.estimated_area_luts for e in series] == [reference[k]
                                                       for k in keys]


def test_area_estimate_batch_validates_inputs():
    model = RegisterAreaModel(size_reg_luts=4.0)
    import pytest
    with pytest.raises(RuntimeError, match="calibrate"):
        model.estimate_batch(np.asarray([1]), np.asarray([10]))
    model.calibrate([CalibrationPoint(1, 10, 100.0),
                     CalibrationPoint(4, 40, 220.0)])
    with pytest.raises(ValueError, match="unique"):
        model.estimate_batch(np.asarray([1, 1]), np.asarray([10, 20]))
    with pytest.raises(ValueError, match="equal length"):
        model.estimate_batch(np.asarray([1, 2]), np.asarray([10]))


# ---------------------------------------------------------------------- #
# throughput model


def reference_compute_cycles(model, architecture, cone_performance):
    """The pre-columnar per-level accumulation, written out longhand."""
    executions_per_level = architecture.executions_per_level()
    cycles = 0.0
    for level_index, depth in enumerate(architecture.level_depths):
        perf = cone_performance[depth]
        instances = architecture.cone_counts.get(depth, 1)
        executions = executions_per_level[level_index]
        serialised = math.ceil(executions / max(1, instances))
        interval = model.execution_interval_cycles(architecture, depth, perf)
        cycles += perf.latency_cycles + serialised * interval
    return cycles


throughput_cases = st.builds(
    lambda window, iterations, depth, counts, latency, radius, components: (
        window, iterations, min(depth, iterations), counts, latency,
        radius, components),
    st.integers(min_value=1, max_value=6),    # window side
    st.integers(min_value=1, max_value=9),    # total iterations
    st.integers(min_value=1, max_value=4),    # primary depth
    st.integers(min_value=1, max_value=8),    # max instance count
    st.integers(min_value=1, max_value=24),   # cone latency (cycles)
    st.integers(min_value=1, max_value=2),    # stencil radius
    st.integers(min_value=1, max_value=3))    # state components


@given(throughput_cases)
@settings(max_examples=120, deadline=None)
def test_throughput_estimate_batch_matches_per_count_evaluate(case):
    window, iterations, depth, max_count, latency, radius, components = case
    split = single_depth_split(iterations, depth)
    depths = sorted(set(split))
    primary = depths[-1]
    model = ThroughputModel(VIRTEX6_XC6VLX760, DataFormat.FIXED16,
                            readonly_components=components - 1)
    cone_performance = {
        d: ConePerformance(d, window, latency_cycles=latency + d)
        for d in depths
    }
    group = [ConeArchitecture(kernel_name="k", window_side=window,
                              level_depths=list(split),
                              cone_counts={**{d: 1 for d in depths},
                                           primary: count},
                              radius=radius, components=components)
             for count in range(1, max_count + 1)]

    columns = model.estimate_batch(
        group[0], cone_performance, 320, 240,
        np.arange(1, max_count + 1, dtype=np.int64))
    for index, architecture in enumerate(group):
        scalar = model.evaluate(architecture, cone_performance, 320, 240)
        # bit-identical, column by column
        assert scalar.compute_cycles_per_tile == float(
            columns["compute_cycles_per_tile"][index])
        assert scalar.cycles_per_tile == float(
            columns["cycles_per_tile"][index])
        assert scalar.seconds_per_frame == float(
            columns["seconds_per_frame"][index])
        assert scalar.frames_per_second == float(
            columns["frames_per_second"][index])
        assert scalar.compute_bound == bool(columns["compute_bound"][index])
        assert scalar.transfer_cycles_per_tile == columns[
            "transfer_cycles_per_tile"]
        assert scalar.tiles_per_frame == columns["tiles_per_frame"]
        assert scalar.offchip_bytes_per_frame == columns[
            "offchip_bytes_per_frame"]
        # ... and identical to the longhand scalar accumulation
        assert scalar.compute_cycles_per_tile == reference_compute_cycles(
            model, architecture, cone_performance)


def test_throughput_estimate_batch_rejects_matrix_counts():
    import pytest
    model = ThroughputModel(VIRTEX6_XC6VLX760, DataFormat.FIXED16)
    architecture = ConeArchitecture(kernel_name="k", window_side=2,
                                    level_depths=[1], cone_counts={1: 1},
                                    radius=1)
    performance = {1: ConePerformance(1, 2, latency_cycles=3)}
    with pytest.raises(ValueError, match="1-D"):
        model.estimate_batch(architecture, performance, 64, 64,
                             np.ones((2, 2), dtype=np.int64))
