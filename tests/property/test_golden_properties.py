"""Property-based tests of kernel semantics via the golden executor."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.algorithms import get_algorithm
from repro.simulation.frame import FrameSet
from repro.simulation.golden import GoldenExecutor

small_frames = npst.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(min_value=5, max_value=12),
                    st.integers(min_value=5, max_value=12)),
    elements=st.floats(min_value=-100.0, max_value=100.0,
                       allow_nan=False, allow_infinity=False),
)


@given(small_frames)
@settings(max_examples=25, deadline=None)
def test_gaussian_blur_preserves_bounds_and_mean_range(data):
    """The normalised blur is a convex combination: output stays within input bounds."""
    kernel = get_algorithm("blur").kernel()
    frames = FrameSet.for_kernel(kernel, *data.shape, initial={"f": data})
    result = GoldenExecutor(kernel).run(frames, 3)["f"].data
    assert result.max() <= data.max() + 1e-9
    assert result.min() >= data.min() - 1e-9


@given(small_frames, st.floats(min_value=-5.0, max_value=5.0, allow_nan=False))
@settings(max_examples=25, deadline=None)
def test_gaussian_blur_is_linear_up_to_constant_shift(data, shift):
    """Blurring (f + c) equals blurring f then adding c (affine invariance)."""
    kernel = get_algorithm("blur").kernel()
    base = GoldenExecutor(kernel).run(
        FrameSet.for_kernel(kernel, *data.shape, initial={"f": data}), 2)["f"].data
    shifted = GoldenExecutor(kernel).run(
        FrameSet.for_kernel(kernel, *data.shape, initial={"f": data + shift}),
        2)["f"].data
    np.testing.assert_allclose(shifted, base + shift, rtol=1e-9, atol=1e-9)


@given(small_frames)
@settings(max_examples=25, deadline=None)
def test_erosion_is_monotone_and_contractive(data):
    kernel = get_algorithm("erode").kernel()
    frames = FrameSet.for_kernel(kernel, *data.shape, initial={"f": data})
    result = GoldenExecutor(kernel).run(frames, 2)["f"].data
    assert np.all(result <= data + 1e-12)
    assert result.min() >= data.min() - 1e-12


@given(small_frames)
@settings(max_examples=20, deadline=None)
def test_heat_step_preserves_total_energy_in_interior(data):
    """One explicit heat step redistributes values without creating new extrema."""
    kernel = get_algorithm("heat").kernel()
    frames = FrameSet.for_kernel(kernel, *data.shape, initial={"t": data})
    result = GoldenExecutor(kernel).step(frames)["t"].data
    assert result.max() <= data.max() + 1e-9
    assert result.min() >= data.min() - 1e-9


@given(small_frames, st.integers(min_value=1, max_value=3),
       st.integers(min_value=2, max_value=4))
@settings(max_examples=15, deadline=None)
def test_cone_tiling_is_independent_of_window_size(data, iterations, window):
    """The functional cone simulator gives the same interior result whatever
    the tile size — tiling is an implementation detail, not semantics."""
    from repro.simulation.cone_simulator import FunctionalConeSimulator

    kernel = get_algorithm("blur").kernel()
    frames = FrameSet.for_kernel(kernel, *data.shape, initial={"f": data})
    simulator = FunctionalConeSimulator(kernel)
    a = simulator.run(frames, iterations, window, mode="region")["f"].data
    b = simulator.run(frames, iterations, window + 1, mode="region")["f"].data
    margin = iterations + 1
    np.testing.assert_allclose(a[:, margin:-margin, margin:-margin],
                               b[:, margin:-margin, margin:-margin],
                               rtol=1e-9, atol=1e-9)
