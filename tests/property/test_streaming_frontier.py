"""Property suite for the streaming Pareto accumulator (ISSUE 7; parallel
``merge`` reduction from ISSUE 9).

The contract under test: folding any chunking, in any chunk order, of any
objective arrays into :class:`repro.dse.stream.StreamingFrontier` yields
exactly ``pareto_indices`` of the concatenated arrays — including the
duplicate-(area, time) first-seen tie-break — and non-finite objectives are
rejected just like the batch path rejects them.  The ``merge`` reduction is
associative and order-insensitive: fanning the chunks across any worker
count, with any (shuffled) chunk-to-worker assignment, and merging the
private accumulators in any order is bit-identical to the serial fold.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.dse.pareto import pareto_indices
from repro.dse.stream import StreamingFrontier, StreamingTopK

#: Objectives drawn from a small grid so duplicate (area, time) pairs are
#: common — the tie-break is the part a naive accumulator gets wrong.
objective_arrays = st.lists(
    st.tuples(st.integers(min_value=1, max_value=12).map(float),
              st.integers(min_value=1, max_value=12).map(lambda v: v / 7.0)),
    min_size=0, max_size=60)


def fold(pairs, chunk_sizes, order_seed):
    """Split ``pairs`` into chunks of the given sizes, shuffle the chunks,
    and fold them into a StreamingFrontier."""
    areas = np.asarray([a for a, _ in pairs], dtype=np.float64)
    times = np.asarray([t for _, t in pairs], dtype=np.float64)
    rows = np.arange(len(pairs), dtype=np.int64)
    boundaries = []
    start = 0
    sizes = iter(chunk_sizes or [max(1, len(pairs))])
    while start < len(pairs):
        size = max(1, next(sizes, 1))
        boundaries.append((start, min(start + size, len(pairs))))
        start += size
    rng = np.random.default_rng(order_seed)
    rng.shuffle(boundaries)
    frontier = StreamingFrontier()
    for lo, hi in boundaries:
        frontier.update(areas[lo:hi], times[lo:hi], rows[lo:hi])
    return areas, times, frontier


@given(objective_arrays,
       st.lists(st.integers(min_value=1, max_value=7), max_size=30),
       st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=200, deadline=None)
def test_frontier_equals_batch_pareto_for_any_chunking_and_order(
        pairs, chunk_sizes, order_seed):
    areas, times, frontier = fold(pairs, chunk_sizes, order_seed)
    expected = pareto_indices(areas, times)
    got_area, got_time, got_order = frontier.result()
    assert np.array_equal(got_order, expected)
    # the kept triples are the originals, bit for bit, in pareto order
    assert np.array_equal(got_area, areas[expected])
    assert np.array_equal(got_time, times[expected])


@given(st.integers(min_value=1, max_value=10),
       st.integers(min_value=2, max_value=6))
@settings(max_examples=40, deadline=None)
def test_duplicate_pairs_keep_first_seen_even_when_it_arrives_last(
        value, copies):
    """All-identical (area, time) rows: the representative must be the
    smallest global row, whatever order the chunks arrive in."""
    frontier = StreamingFrontier()
    for row in reversed(range(copies)):  # highest row first
        frontier.update(np.asarray([float(value)]),
                        np.asarray([float(value)]),
                        np.asarray([row], dtype=np.int64))
    _, _, orders = frontier.result()
    assert orders.tolist() == [0]


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
@pytest.mark.parametrize("column", ["area", "time"])
def test_non_finite_objectives_are_rejected(bad, column):
    frontier = StreamingFrontier()
    area = np.asarray([1.0, bad if column == "area" else 2.0])
    time = np.asarray([1.0, bad if column == "time" else 2.0])
    with pytest.raises(ValueError, match="finite"):
        frontier.update(area, time, np.asarray([0, 1], dtype=np.int64))
    # the failed update must not have corrupted the state
    assert len(frontier) == 0


def test_mismatched_shapes_are_rejected():
    frontier = StreamingFrontier()
    with pytest.raises(ValueError, match="equal length"):
        frontier.update(np.asarray([1.0, 2.0]), np.asarray([1.0]),
                        np.asarray([0], dtype=np.int64))


def chunk_boundaries(n_rows, chunk_sizes):
    boundaries = []
    start = 0
    sizes = iter(chunk_sizes or [max(1, n_rows)])
    while start < n_rows:
        size = max(1, next(sizes, 1))
        boundaries.append((start, min(start + size, n_rows)))
        start += size
    return boundaries


@given(objective_arrays,
       st.lists(st.integers(min_value=1, max_value=7), max_size=30),
       st.sampled_from([1, 2, 4]),
       st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=1, max_value=6))
@settings(max_examples=150, deadline=None)
def test_merge_matches_serial_fold_for_any_worker_assignment(
        pairs, chunk_sizes, workers, order_seed, k):
    """Shuffle the chunks, deal them round-robin to ``workers`` private
    accumulators, merge in a seeded random order: bit-identical to the
    one-accumulator serial fold, for both the frontier and the top-k."""
    areas = np.asarray([a for a, _ in pairs], dtype=np.float64)
    times = np.asarray([t for _, t in pairs], dtype=np.float64)
    rows = np.arange(len(pairs), dtype=np.int64)
    boundaries = chunk_boundaries(len(pairs), chunk_sizes)
    rng = np.random.default_rng(order_seed)
    rng.shuffle(boundaries)

    serial_frontier = StreamingFrontier()
    serial_topk = StreamingTopK(k)
    for lo, hi in boundaries:
        serial_frontier.update(areas[lo:hi], times[lo:hi], rows[lo:hi])
        serial_topk.update(areas[lo:hi], times[lo:hi], rows[lo:hi])

    frontiers = [StreamingFrontier() for _ in range(workers)]
    topks = [StreamingTopK(k) for _ in range(workers)]
    for index, (lo, hi) in enumerate(boundaries):
        frontiers[index % workers].update(areas[lo:hi], times[lo:hi],
                                          rows[lo:hi])
        topks[index % workers].update(areas[lo:hi], times[lo:hi],
                                      rows[lo:hi])
    merge_order = rng.permutation(workers)
    merged_frontier = StreamingFrontier()
    merged_topk = StreamingTopK(k)
    for worker in merge_order:
        merged_frontier.merge(frontiers[worker])
        merged_topk.merge(topks[worker])

    for merged, serial in ((merged_frontier, serial_frontier),
                           (merged_topk, serial_topk)):
        merged_area, merged_time, merged_rows = merged.result()
        serial_area, serial_time, serial_rows = serial.result()
        assert np.array_equal(merged_rows, serial_rows)
        assert np.array_equal(merged_area, serial_area)
        assert np.array_equal(merged_time, serial_time)


@given(objective_arrays,
       st.sampled_from([2, 4]),
       st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_merge_is_associative_on_the_frontier(pairs, workers, order_seed):
    """(A ∪ B) ∪ C == A ∪ (B ∪ C): merging left-to-right equals merging a
    pre-merged right spine — pareto(pareto(X) ∪ pareto(Y)) == pareto(X ∪ Y)
    made operational."""
    areas = np.asarray([a for a, _ in pairs], dtype=np.float64)
    times = np.asarray([t for _, t in pairs], dtype=np.float64)
    rows = np.arange(len(pairs), dtype=np.int64)
    rng = np.random.default_rng(order_seed)
    assignment = rng.integers(0, workers + 1, size=len(pairs))
    parts = []
    for worker in range(workers + 1):
        member = assignment == worker
        part = StreamingFrontier()
        part.update(areas[member], times[member], rows[member])
        parts.append(part)

    def clone(frontier):
        copy = StreamingFrontier()
        copy.merge(frontier)
        return copy

    left = clone(parts[0])
    for part in parts[1:]:
        left.merge(part)
    right_spine = clone(parts[-1])
    for part in reversed(parts[:-1]):
        merged = clone(part)
        merged.merge(right_spine)
        right_spine = merged
    assert np.array_equal(left.result()[2], right_spine.result()[2])


@given(objective_arrays,
       st.lists(st.integers(min_value=1, max_value=7), max_size=30),
       st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=0, max_value=8))
@settings(max_examples=100, deadline=None)
def test_top_k_is_chunking_and_order_independent(pairs, chunk_sizes,
                                                 order_seed, k):
    areas = np.asarray([a for a, _ in pairs], dtype=np.float64)
    times = np.asarray([t for _, t in pairs], dtype=np.float64)
    rows = np.arange(len(pairs), dtype=np.int64)
    expected = np.lexsort((rows, areas, times))[:k]

    boundaries = []
    start = 0
    sizes = iter(chunk_sizes or [max(1, len(pairs))])
    while start < len(pairs):
        size = max(1, next(sizes, 1))
        boundaries.append((start, min(start + size, len(pairs))))
        start += size
    rng = np.random.default_rng(order_seed)
    rng.shuffle(boundaries)
    topk = StreamingTopK(k)
    for lo, hi in boundaries:
        topk.update(areas[lo:hi], times[lo:hi], rows[lo:hi])
    _, _, got = topk.result()
    assert np.array_equal(got, rows[expected])
