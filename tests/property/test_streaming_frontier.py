"""Property suite for the streaming Pareto accumulator (ISSUE 7).

The contract under test: folding any chunking, in any chunk order, of any
objective arrays into :class:`repro.dse.stream.StreamingFrontier` yields
exactly ``pareto_indices`` of the concatenated arrays — including the
duplicate-(area, time) first-seen tie-break — and non-finite objectives are
rejected just like the batch path rejects them.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.dse.pareto import pareto_indices
from repro.dse.stream import StreamingFrontier, StreamingTopK

#: Objectives drawn from a small grid so duplicate (area, time) pairs are
#: common — the tie-break is the part a naive accumulator gets wrong.
objective_arrays = st.lists(
    st.tuples(st.integers(min_value=1, max_value=12).map(float),
              st.integers(min_value=1, max_value=12).map(lambda v: v / 7.0)),
    min_size=0, max_size=60)


def fold(pairs, chunk_sizes, order_seed):
    """Split ``pairs`` into chunks of the given sizes, shuffle the chunks,
    and fold them into a StreamingFrontier."""
    areas = np.asarray([a for a, _ in pairs], dtype=np.float64)
    times = np.asarray([t for _, t in pairs], dtype=np.float64)
    rows = np.arange(len(pairs), dtype=np.int64)
    boundaries = []
    start = 0
    sizes = iter(chunk_sizes or [max(1, len(pairs))])
    while start < len(pairs):
        size = max(1, next(sizes, 1))
        boundaries.append((start, min(start + size, len(pairs))))
        start += size
    rng = np.random.default_rng(order_seed)
    rng.shuffle(boundaries)
    frontier = StreamingFrontier()
    for lo, hi in boundaries:
        frontier.update(areas[lo:hi], times[lo:hi], rows[lo:hi])
    return areas, times, frontier


@given(objective_arrays,
       st.lists(st.integers(min_value=1, max_value=7), max_size=30),
       st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=200, deadline=None)
def test_frontier_equals_batch_pareto_for_any_chunking_and_order(
        pairs, chunk_sizes, order_seed):
    areas, times, frontier = fold(pairs, chunk_sizes, order_seed)
    expected = pareto_indices(areas, times)
    got_area, got_time, got_order = frontier.result()
    assert np.array_equal(got_order, expected)
    # the kept triples are the originals, bit for bit, in pareto order
    assert np.array_equal(got_area, areas[expected])
    assert np.array_equal(got_time, times[expected])


@given(st.integers(min_value=1, max_value=10),
       st.integers(min_value=2, max_value=6))
@settings(max_examples=40, deadline=None)
def test_duplicate_pairs_keep_first_seen_even_when_it_arrives_last(
        value, copies):
    """All-identical (area, time) rows: the representative must be the
    smallest global row, whatever order the chunks arrive in."""
    frontier = StreamingFrontier()
    for row in reversed(range(copies)):  # highest row first
        frontier.update(np.asarray([float(value)]),
                        np.asarray([float(value)]),
                        np.asarray([row], dtype=np.int64))
    _, _, orders = frontier.result()
    assert orders.tolist() == [0]


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
@pytest.mark.parametrize("column", ["area", "time"])
def test_non_finite_objectives_are_rejected(bad, column):
    frontier = StreamingFrontier()
    area = np.asarray([1.0, bad if column == "area" else 2.0])
    time = np.asarray([1.0, bad if column == "time" else 2.0])
    with pytest.raises(ValueError, match="finite"):
        frontier.update(area, time, np.asarray([0, 1], dtype=np.int64))
    # the failed update must not have corrupted the state
    assert len(frontier) == 0


def test_mismatched_shapes_are_rejected():
    frontier = StreamingFrontier()
    with pytest.raises(ValueError, match="equal length"):
        frontier.update(np.asarray([1.0, 2.0]), np.asarray([1.0]),
                        np.asarray([0], dtype=np.int64))


@given(objective_arrays,
       st.lists(st.integers(min_value=1, max_value=7), max_size=30),
       st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=0, max_value=8))
@settings(max_examples=100, deadline=None)
def test_top_k_is_chunking_and_order_independent(pairs, chunk_sizes,
                                                 order_seed, k):
    areas = np.asarray([a for a, _ in pairs], dtype=np.float64)
    times = np.asarray([t for _, t in pairs], dtype=np.float64)
    rows = np.arange(len(pairs), dtype=np.int64)
    expected = np.lexsort((rows, areas, times))[:k]

    boundaries = []
    start = 0
    sizes = iter(chunk_sizes or [max(1, len(pairs))])
    while start < len(pairs):
        size = max(1, next(sizes, 1))
        boundaries.append((start, min(start + size, len(pairs))))
        start += size
    rng = np.random.default_rng(order_seed)
    rng.shuffle(boundaries)
    topk = StreamingTopK(k)
    for lo, hi in boundaries:
        topk.update(areas[lo:hi], times[lo:hi], rows[lo:hi])
    _, _, got = topk.result()
    assert np.array_equal(got, rows[expected])
