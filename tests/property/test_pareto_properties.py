"""Property-based tests for Pareto extraction and the area model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.architecture.template import ConeArchitecture
from repro.dse.design_point import DesignPoint
from repro.dse.pareto import is_dominated, pareto_front
from repro.estimation.area_model import CalibrationPoint, RegisterAreaModel
from repro.estimation.throughput_model import ArchitecturePerformance


def make_point(area, spf):
    architecture = ConeArchitecture(
        kernel_name="k", window_side=2, level_depths=[1],
        cone_counts={1: 1}, radius=1)
    performance = ArchitecturePerformance(
        architecture_label="k", clock_hz=1e8, tiles_per_frame=10,
        compute_cycles_per_tile=1, transfer_cycles_per_tile=1,
        cycles_per_tile=1, seconds_per_frame=spf,
        frames_per_second=1.0 / spf, offchip_bytes_per_frame=1.0,
        compute_bound=True)
    return DesignPoint(architecture=architecture, area_luts=area,
                       area_estimated=True, performance=performance,
                       fits_device=True)


objective_pairs = st.lists(
    st.tuples(st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
              st.floats(min_value=1e-4, max_value=10.0, allow_nan=False)),
    min_size=1, max_size=40)


@given(objective_pairs)
@settings(max_examples=80, deadline=None)
def test_pareto_front_is_non_dominated_and_covers_input(pairs):
    points = [make_point(a, t) for a, t in pairs]
    front = pareto_front(points)
    assert front
    # nobody on the front is dominated by anybody in the input
    for member in front:
        assert not any(is_dominated(member, other) for other in points)
    # every input point is dominated by (or equal in objectives to) someone on
    # the front
    for point in points:
        assert any((f.area_luts <= point.area_luts
                    and f.seconds_per_frame <= point.seconds_per_frame)
                   for f in front)


@given(objective_pairs)
@settings(max_examples=50, deadline=None)
def test_pareto_front_is_idempotent(pairs):
    points = [make_point(a, t) for a, t in pairs]
    front = pareto_front(points)
    assert [p.area_luts for p in pareto_front(front)] == [p.area_luts for p in front]


@given(st.floats(min_value=0.5, max_value=50.0),
       st.floats(min_value=0.0, max_value=1e4),
       st.lists(st.integers(min_value=1, max_value=10_000),
                min_size=3, max_size=10, unique=True))
@settings(max_examples=60, deadline=None)
def test_area_model_is_exact_on_affine_families(slope, intercept, registers):
    """Equation 1 reproduces any affine register-to-area relationship exactly."""
    registers = sorted(registers)
    model = RegisterAreaModel(size_reg_luts=4.0)
    actual = {i + 1: intercept + slope * r for i, r in enumerate(registers)}
    register_map = {i + 1: r for i, r in enumerate(registers)}
    model.calibrate([CalibrationPoint(1, registers[0], actual[1]),
                     CalibrationPoint(2, registers[1], actual[2])])
    for estimate in model.estimate_series(register_map):
        assert abs(estimate.estimated_area_luts - actual[estimate.key]) < 1e-6 * max(
            1.0, actual[estimate.key])
