"""Property-based tests for geometry and cone-domain arithmetic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.architecture.cone import ConeShape
from repro.symbolic.dependency import cone_element_count, cone_input_count
from repro.utils.geometry import Offset, Window, bounding_window, window_union

offsets = st.builds(Offset,
                    st.integers(min_value=-50, max_value=50),
                    st.integers(min_value=-50, max_value=50))
sides = st.integers(min_value=1, max_value=12)
radii = st.integers(min_value=0, max_value=4)
depths = st.integers(min_value=1, max_value=6)


@given(offsets, offsets)
def test_offset_addition_is_commutative_and_invertible(a, b):
    assert a + b == b + a
    assert (a + b) - b == a
    assert a + (-a) == Offset(0, 0)


@given(offsets)
def test_chebyshev_never_exceeds_manhattan(offset):
    assert offset.chebyshev() <= offset.manhattan() <= 2 * offset.chebyshev()


@given(sides, st.integers(min_value=0, max_value=5))
def test_inflate_area_formula(side, radius):
    window = Window.square(side)
    inflated = window.inflate(radius)
    assert inflated.area == (side + 2 * radius) ** 2
    assert inflated.contains_window(window)


@given(st.lists(offsets, min_size=1, max_size=20))
def test_bounding_window_contains_every_offset(points):
    box = bounding_window(points)
    assert all(box.contains(p) for p in points)


@given(sides, sides, offsets)
def test_window_union_contains_both(side_a, side_b, shift):
    a = Window.square(side_a)
    b = Window.square(side_b).translate(shift)
    union = window_union(a, b)
    assert union.contains_window(a)
    assert union.contains_window(b)


@given(sides, radii, depths)
def test_cone_counts_are_consistent(side, radius, depth):
    computed = cone_element_count(side, radius, depth)
    inputs = cone_input_count(side, radius, depth)
    outputs = side * side
    # the cone computes at least its outputs and at most depth * input size
    assert computed >= outputs
    assert computed <= depth * inputs
    # the input window is the largest window of the cone
    assert inputs >= outputs


@given(sides, radii, depths, st.integers(min_value=1, max_value=3))
def test_components_scale_linearly(side, radius, depth, components):
    assert cone_element_count(side, radius, depth, components) == \
        components * cone_element_count(side, radius, depth)


@given(sides, depths)
def test_cone_shape_geometry_with_zero_radius_has_no_halo(side, depth):
    geometry = ConeShape(side, depth).geometry(radius=0)
    assert geometry.input_side == side
    assert geometry.recompute_overhead == depth
