"""Property-based tests (hypothesis) for the expression DAG and its evaluation."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.symbolic.expression import (
    ExpressionBuilder,
    OpKind,
    count_nodes,
    evaluate,
)
from repro.utils.geometry import Offset

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)
small_offsets = st.builds(Offset,
                          st.integers(min_value=-3, max_value=3),
                          st.integers(min_value=-3, max_value=3))


@st.composite
def expression_and_bindings(draw, max_symbols=4, max_ops=8):
    """Build a random expression over a few symbols plus value bindings."""
    builder = ExpressionBuilder()
    offsets = draw(st.lists(small_offsets, min_size=1, max_size=max_symbols,
                            unique=True))
    symbols = [builder.symbol("f", offset) for offset in offsets]
    bindings = {}
    for offset in offsets:
        bindings[("f", 0, offset.dx, offset.dy, 0)] = draw(finite_floats)
    pool = list(symbols) + [builder.constant(draw(finite_floats))]
    op_choices = [OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.MIN, OpKind.MAX]
    for _ in range(draw(st.integers(min_value=0, max_value=max_ops))):
        kind = draw(st.sampled_from(op_choices))
        a = draw(st.sampled_from(pool))
        b = draw(st.sampled_from(pool))
        pool.append(builder.operation(kind, a, b))
    return builder, pool[-1], bindings


@given(expression_and_bindings())
@settings(max_examples=60, deadline=None)
def test_evaluation_is_deterministic(data):
    _, expr, bindings = data
    assert evaluate(expr, bindings) == evaluate(expr, bindings)


@given(expression_and_bindings())
@settings(max_examples=60, deadline=None)
def test_evaluation_is_finite_for_division_free_expressions(data):
    _, expr, bindings = data
    value = evaluate(expr, bindings)
    assert math.isfinite(value)


@given(expression_and_bindings())
@settings(max_examples=60, deadline=None)
def test_interning_never_creates_duplicate_structures(data):
    builder, expr, _ = data
    # the number of reachable nodes can never exceed the number of interned
    # nodes tracked by the builder
    assert count_nodes([expr]) <= builder.interned_node_count


@given(st.lists(finite_floats, min_size=2, max_size=2),
       st.sampled_from([OpKind.ADD, OpKind.MUL, OpKind.MIN, OpKind.MAX]))
@settings(max_examples=80, deadline=None)
def test_commutative_interning_matches_numeric_commutativity(values, kind):
    builder = ExpressionBuilder()
    a = builder.symbol("f", Offset(0, 0))
    b = builder.symbol("f", Offset(1, 0))
    left = builder.operation(kind, a, b)
    right = builder.operation(kind, b, a)
    assert left is right
    bindings = {("f", 0, 0, 0, 0): values[0], ("f", 0, 1, 0, 0): values[1]}
    assert evaluate(left, bindings) == evaluate(right, bindings)


@given(finite_floats, finite_floats)
@settings(max_examples=80, deadline=None)
def test_constant_folding_matches_python_arithmetic(a, b):
    builder = ExpressionBuilder()
    total = builder.add(builder.constant(a), builder.constant(b))
    product = builder.mul(builder.constant(a), builder.constant(b))
    assert evaluate(total, {}) == a + b
    assert evaluate(product, {}) == a * b


@given(st.integers(min_value=1, max_value=3), st.integers(min_value=1, max_value=3))
@settings(max_examples=20, deadline=None)
def test_cone_register_count_is_monotone_in_window_and_depth(window, depth):
    from repro.algorithms import get_algorithm
    from repro.symbolic.cone_expression import ConeExpressionBuilder

    builder = ConeExpressionBuilder(get_algorithm("blur").kernel())
    base = builder.build(window, depth).register_count
    wider = builder.build(window + 1, depth).register_count
    deeper = builder.build(window, depth + 1).register_count
    assert wider > base
    assert deeper > base
