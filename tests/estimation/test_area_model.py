"""Unit tests for the Equation-1 area model and its calibration."""

import pytest

from repro.estimation.area_model import (
    AreaModelValidation,
    CalibrationPoint,
    RegisterAreaModel,
    validate_against_synthesis,
)
from repro.ir.operators import DataFormat, default_library


def linear_points(slope, intercept, registers):
    return [CalibrationPoint(key=i + 1, register_count=r,
                             actual_area_luts=intercept + slope * r)
            for i, r in enumerate(registers)]


class TestCalibration:
    def test_two_point_calibration_recovers_slope(self):
        model = RegisterAreaModel(size_reg_luts=10.0)
        points = linear_points(25.0, 100.0, [50, 120])
        alpha = model.calibrate(points)
        assert alpha == pytest.approx(2.5)

    def test_least_squares_with_more_points(self):
        model = RegisterAreaModel(size_reg_luts=10.0)
        points = linear_points(30.0, 0.0, [10, 20, 30, 40])
        alpha = model.calibrate(points)
        assert alpha == pytest.approx(3.0)

    def test_needs_two_points(self):
        model = RegisterAreaModel()
        with pytest.raises(ValueError):
            model.calibrate(linear_points(1.0, 0.0, [10]))

    def test_rejects_identical_register_counts(self):
        model = RegisterAreaModel()
        points = [CalibrationPoint(1, 50, 100.0), CalibrationPoint(2, 50, 120.0)]
        with pytest.raises(ValueError):
            model.calibrate(points)

    def test_rejects_non_positive_alpha(self):
        model = RegisterAreaModel(size_reg_luts=10.0)
        decreasing = [CalibrationPoint(1, 50, 500.0), CalibrationPoint(2, 100, 100.0)]
        with pytest.raises(ValueError, match="non-positive alpha"):
            model.calibrate(decreasing)

    def test_default_size_reg_from_library(self):
        model = RegisterAreaModel(default_library(DataFormat.FIXED16))
        assert model.size_reg_luts > 0


class TestEstimation:
    def test_estimate_requires_calibration(self):
        model = RegisterAreaModel()
        with pytest.raises(RuntimeError):
            model.estimate_series({1: 10})
        with pytest.raises(RuntimeError):
            model.estimate_single(1, 10)
        with pytest.raises(RuntimeError):
            _ = RegisterAreaModel().anchor

    def test_exact_on_affine_data(self):
        """On perfectly affine area data Equation 1 is exact."""
        model = RegisterAreaModel(size_reg_luts=8.0)
        registers = {1: 20, 4: 60, 9: 130, 16: 230, 25: 360}
        actual = {k: 500.0 + 12.0 * r for k, r in registers.items()}
        model.calibrate([CalibrationPoint(1, registers[1], actual[1]),
                         CalibrationPoint(4, registers[4], actual[4])])
        estimates = model.estimate_series(registers)
        for estimate in estimates:
            assert estimate.estimated_area_luts == pytest.approx(actual[estimate.key])

    def test_anchor_is_reproduced_exactly(self):
        model = RegisterAreaModel(size_reg_luts=8.0)
        model.calibrate(linear_points(10.0, 50.0, [10, 30]))
        estimates = {e.key: e for e in model.estimate_series({1: 10, 2: 30, 3: 90})}
        assert estimates[1].estimated_area_luts == pytest.approx(50.0 + 100.0)

    def test_backward_extrapolation(self):
        model = RegisterAreaModel(size_reg_luts=10.0)
        model.calibrate([CalibrationPoint(4, 100, 2000.0),
                         CalibrationPoint(9, 200, 3000.0)])
        estimates = {e.key: e.estimated_area_luts
                     for e in model.estimate_series({1: 50, 4: 100, 9: 200})}
        assert estimates[1] == pytest.approx(1500.0)

    def test_estimate_single(self):
        model = RegisterAreaModel(size_reg_luts=10.0)
        model.calibrate([CalibrationPoint(1, 100, 1000.0),
                         CalibrationPoint(2, 200, 2000.0)])
        estimate = model.estimate_single(5, 500)
        assert estimate.estimated_area_luts == pytest.approx(5000.0)


class TestValidation:
    def test_error_statistics(self):
        validation = AreaModelValidation(depth=2)
        validation.add(1, 100.0, 103.0)
        validation.add(4, 200.0, 190.0)
        assert validation.max_error_percent == pytest.approx(5.0)
        assert validation.mean_error_percent == pytest.approx(4.0)

    def test_empty_validation(self):
        validation = AreaModelValidation(depth=1)
        assert validation.max_error_percent == 0.0
        assert validation.mean_error_percent == 0.0

    def test_validate_against_synthesis_alignment(self):
        report = validate_against_synthesis({1: 100.0, 4: 200.0, 9: 300.0},
                                            {1: 110.0, 4: 210.0}, depth=3)
        assert len(report.entries) == 2
        assert report.depth == 3


@pytest.mark.slow
class TestPaperAccuracyClaim:
    """Figures 5 and 8: the model calibrated on two syntheses stays accurate."""

    @pytest.mark.parametrize("algorithm,iterations,max_error", [
        ("blur", 10, 8.0),     # paper: max 6.58%, average 2.93%
        ("chamb", 11, 11.0),   # paper: max 6.36%, average 2.19%
    ])
    def test_estimation_error_stays_small(self, algorithm, iterations, max_error):
        from repro.algorithms import get_algorithm
        from repro.dse.explorer import DesignSpaceExplorer

        spec = get_algorithm(algorithm)
        explorer = DesignSpaceExplorer(spec.kernel(), synthesize_all=True,
                                       window_sides=(1, 2, 3, 5, 7, 9),
                                       max_depth=3)
        _, validations = explorer.characterize_cones(iterations)
        for validation in validations.values():
            assert validation.max_error_percent < max_error
            assert validation.mean_error_percent < max_error / 2
