"""Unit tests for the architecture throughput model."""

import pytest

from repro.architecture.template import ConeArchitecture
from repro.estimation.throughput_model import ConePerformance, ThroughputModel
from repro.ir.operators import DataFormat
from repro.synth.fpga_device import VIRTEX2P_XC2VP30, VIRTEX6_XC6VLX760


def make_architecture(window=4, depths=(2, 2), counts=None, radius=1, components=1):
    counts = counts or {d: 1 for d in set(depths)}
    return ConeArchitecture(
        kernel_name="blur", window_side=window, level_depths=list(depths),
        cone_counts=counts, radius=radius, components=components)


def perf_for(architecture, latency=4):
    return {depth: ConePerformance(depth, architecture.window_side, latency)
            for depth in architecture.distinct_depths}


@pytest.fixture()
def model():
    return ThroughputModel(VIRTEX6_XC6VLX760, DataFormat.FIXED16)


class TestPerTileAccounting:
    def test_compute_cycles_positive_and_monotone_in_depth_levels(self, model):
        shallow = make_architecture(depths=(2,))
        deep = make_architecture(depths=(2, 2, 2))
        assert model.compute_cycles_per_tile(deep, perf_for(deep)) > \
            model.compute_cycles_per_tile(shallow, perf_for(shallow))

    def test_more_instances_reduce_compute_time(self, model):
        single = make_architecture(depths=(2, 2), counts={2: 1})
        quad = make_architecture(depths=(2, 2), counts={2: 4})
        assert model.compute_cycles_per_tile(quad, perf_for(quad)) < \
            model.compute_cycles_per_tile(single, perf_for(single))

    def test_missing_cone_performance_raises(self, model):
        architecture = make_architecture()
        with pytest.raises(KeyError):
            model.compute_cycles_per_tile(architecture, {})

    def test_transfer_accounts_halo_and_components(self, model):
        scalar = make_architecture(components=1)
        vector = make_architecture(components=2)
        cycles_scalar, bytes_scalar = model.transfer_cycles_per_tile(scalar)
        cycles_vector, bytes_vector = model.transfer_cycles_per_tile(vector)
        assert bytes_vector > 1.9 * bytes_scalar
        assert cycles_vector > cycles_scalar

    def test_readonly_components_add_traffic(self):
        with_readonly = ThroughputModel(VIRTEX6_XC6VLX760, DataFormat.FIXED16,
                                        readonly_components=1)
        without = ThroughputModel(VIRTEX6_XC6VLX760, DataFormat.FIXED16)
        architecture = make_architecture()
        assert with_readonly.transfer_cycles_per_tile(architecture)[1] > \
            without.transfer_cycles_per_tile(architecture)[1]

    def test_tiles_per_frame_rounds_up(self, model):
        architecture = make_architecture(window=5)
        assert model.tiles_per_frame(architecture, 1024, 768) == 205 * 154


class TestFrameLevel:
    def test_evaluate_consistency(self, model):
        architecture = make_architecture()
        result = model.evaluate(architecture, perf_for(architecture), 1024, 768)
        assert result.seconds_per_frame > 0
        assert result.frames_per_second == pytest.approx(1.0 / result.seconds_per_frame)
        assert result.cycles_per_tile >= max(result.compute_cycles_per_tile,
                                             result.transfer_cycles_per_tile)
        assert result.tiles_per_frame == model.tiles_per_frame(architecture, 1024, 768)

    def test_larger_frames_take_longer(self, model):
        architecture = make_architecture()
        performance = perf_for(architecture)
        small = model.evaluate(architecture, performance, 512, 512)
        large = model.evaluate(architecture, performance, 1920, 1080)
        assert large.seconds_per_frame > 3 * small.seconds_per_frame

    def test_execution_interval_bounded_by_feed(self, model):
        architecture = make_architecture(window=8, depths=(5,))
        perf = ConePerformance(5, 8, latency_cycles=4, initiation_interval=1)
        interval = model.execution_interval_cycles(architecture, 5, perf)
        geometry = architecture.geometry(5)
        assert interval >= geometry.input_elements / model.onchip_port_elements_per_cycle

    def test_weaker_device_is_slower(self):
        fast = ThroughputModel(VIRTEX6_XC6VLX760, DataFormat.FIXED16)
        slow = ThroughputModel(VIRTEX2P_XC2VP30, DataFormat.FIXED16)
        architecture = make_architecture()
        performance = perf_for(architecture)
        assert slow.evaluate(architecture, performance, 1024, 768).frames_per_second < \
            fast.evaluate(architecture, performance, 1024, 768).frames_per_second

    def test_wider_data_format_increases_traffic(self):
        narrow = ThroughputModel(VIRTEX6_XC6VLX760, DataFormat.FIXED16)
        wide = ThroughputModel(VIRTEX6_XC6VLX760, DataFormat.FIXED32)
        architecture = make_architecture()
        assert wide.transfer_cycles_per_tile(architecture)[1] == \
            2 * narrow.transfer_cycles_per_tile(architecture)[1]
