"""Unit tests for the end-to-end flow driver and the reporting helpers."""

import pytest

from repro.dse.constraints import DseConstraints
from repro.flow.hls_flow import FlowOptions, HlsFlow
from repro.flow.report import (
    area_validation_table,
    flow_summary,
    pareto_table,
    throughput_table,
)
from repro.ir.operators import DataFormat


SMALL_OPTIONS = FlowOptions(
    data_format=DataFormat.FIXED16,
    frame_width=128,
    frame_height=96,
    iterations=4,
    window_sides=(1, 2, 3),
    max_depth=2,
    max_cones_per_depth=3,
    synthesize_all=True,
)


@pytest.fixture(scope="module")
def igf_flow_result(igf_kernel):
    return HlsFlow(igf_kernel, SMALL_OPTIONS).run()


class TestFlowConstruction:
    def test_flow_from_c_source(self):
        from repro.algorithms.gaussian import IGF_C_SOURCE
        flow = HlsFlow(IGF_C_SOURCE, SMALL_OPTIONS)
        assert flow.kernel.name == "blur"
        assert flow.invariance.is_isl

    def test_non_isl_kernel_rejected(self):
        from repro.frontend.dsl import stencil_kernel

        def define(k):
            f = k.field("f")
            k.update(f, f(10, 0) + f(-10, 0))

        with pytest.raises(Exception):
            HlsFlow(stencil_kernel("wide", define), SMALL_OPTIONS)


class TestFlowResult:
    def test_result_structure(self, igf_flow_result):
        result = igf_flow_result
        assert result.kernel.name == "blur"
        assert result.properties.radius == 1
        assert result.design_points and result.pareto
        assert result.exploration.total_iterations == 4

    def test_best_and_extreme_points(self, igf_flow_result):
        best = igf_flow_result.best_fitting_point()
        fastest = igf_flow_result.fastest_point()
        smallest = igf_flow_result.smallest_point()
        assert best is not None
        assert fastest.seconds_per_frame <= best.seconds_per_frame
        assert smallest.area_luts <= best.area_luts

    def test_constraints_are_honoured(self, igf_kernel):
        options = FlowOptions(
            data_format=DataFormat.FIXED16, frame_width=128, frame_height=96,
            iterations=4, window_sides=(1, 2, 3), max_depth=2,
            max_cones_per_depth=3,
            constraints=DseConstraints(device_only=True))
        result = HlsFlow(igf_kernel, options).run()
        assert all(p.fits_device for p in result.design_points)

    def test_repeated_runs_return_fresh_results(self, igf_kernel):
        """Mutating a returned result must not leak into a later run()."""
        flow = HlsFlow(igf_kernel, SMALL_OPTIONS)
        first = flow.run()
        point_count = len(first.design_points)
        first.design_points.clear()
        second = flow.run()
        assert second is not first
        assert len(second.design_points) == point_count

    def test_options_mutation_after_construction_takes_effect(self, igf_kernel):
        """The old driver honoured `flow.options` mutations between runs;
        the shim must too (frame-size changes even reuse characterizations)."""
        flow = HlsFlow(igf_kernel, SMALL_OPTIONS)
        first = flow.run()
        assert first.exploration.frame_width == 128
        flow.options = FlowOptions(
            data_format=DataFormat.FIXED16, frame_width=640, frame_height=480,
            iterations=4, window_sides=(1, 2, 3), max_depth=2,
            max_cones_per_depth=3, synthesize_all=True)
        second = flow.run()
        assert second.exploration.frame_width == 640
        # same cone shapes -> the characterization cache absorbed the change
        assert (second.exploration.synthesis_runs
                == first.exploration.synthesis_runs)

    def test_extreme_points_are_none_when_constraints_exclude_everything(
            self, igf_kernel):
        """Regression: fastest/smallest_point used to crash with a bare
        ValueError from min() on an empty design-point list."""
        options = FlowOptions(
            data_format=DataFormat.FIXED16, frame_width=128, frame_height=96,
            iterations=4, window_sides=(1, 2, 3), max_depth=2,
            max_cones_per_depth=3,
            constraints=DseConstraints(max_area_luts=1.0))
        result = HlsFlow(igf_kernel, options).run()
        assert result.design_points == []
        assert result.fastest_point() is None
        assert result.smallest_point() is None
        assert result.best_fitting_point() is None


class TestVhdlGeneration:
    def test_generate_vhdl_for_a_design_point(self, igf_kernel, igf_flow_result):
        flow = HlsFlow(igf_kernel, SMALL_OPTIONS)
        point = igf_flow_result.pareto[-1]
        files = flow.generate_vhdl(point)
        assert "isl_fixed_pkg.vhd" in files
        entity_files = [name for name in files if name.endswith(".vhd")
                        and "pkg" not in name and "top" not in name]
        assert len(entity_files) == len(point.architecture.distinct_depths)
        top_files = [name for name in files if name.endswith("_top.vhd")]
        assert len(top_files) == 1
        assert "entity" in files[top_files[0]]


class TestReports:
    def test_pareto_table(self, igf_flow_result):
        table = pareto_table(igf_flow_result.pareto)
        text = table.render()
        assert "kLUTs" in text and "fps" in text
        assert len(table.rows) == len(igf_flow_result.pareto)

    def test_area_validation_table(self, igf_flow_result):
        text = area_validation_table(
            igf_flow_result.exploration.area_validations).render()
        assert "max error %" in text

    def test_throughput_table(self, igf_flow_result):
        table = throughput_table(igf_flow_result.exploration)
        assert len(table.rows) == 3  # one row per window side
        assert "depth 1 (fps)" in table.columns[1]

    def test_flow_summary_mentions_key_quantities(self, igf_flow_result):
        text = flow_summary(igf_flow_result.exploration)
        assert "design points" in text
        assert "Pareto" in text
        assert "blur" in text
