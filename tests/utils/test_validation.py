"""Unit tests for argument-validation helpers."""

import pytest

from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
)


def test_check_positive_accepts_positive_values():
    check_positive("x", 1)
    check_positive("x", 0.001)


@pytest.mark.parametrize("value", [0, -1, -0.5])
def test_check_positive_rejects_non_positive(value):
    with pytest.raises(ValueError, match="x must be > 0"):
        check_positive("x", value)


def test_check_non_negative():
    check_non_negative("n", 0)
    check_non_negative("n", 3)
    with pytest.raises(ValueError):
        check_non_negative("n", -1)


def test_check_in_range_bounds_inclusive():
    check_in_range("v", 1, 1, 5)
    check_in_range("v", 5, 1, 5)
    with pytest.raises(ValueError):
        check_in_range("v", 6, 1, 5)
    with pytest.raises(ValueError):
        check_in_range("v", 0, 1, 5)


def test_check_type_single_and_tuple():
    check_type("s", "hello", str)
    check_type("x", 3, (int, float))
    with pytest.raises(TypeError, match="must be of type int"):
        check_type("x", "nope", int)
    with pytest.raises(TypeError, match="int, float"):
        check_type("x", "nope", (int, float))
