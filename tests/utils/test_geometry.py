"""Unit tests for geometry primitives."""

import pytest

from repro.utils.geometry import Offset, Window, bounding_window, window_union


class TestOffset:
    def test_addition_and_subtraction(self):
        a = Offset(2, -3)
        b = Offset(-1, 5)
        assert a + b == Offset(1, 2)
        assert a - b == Offset(3, -8)

    def test_negation(self):
        assert -Offset(2, -3) == Offset(-2, 3)

    def test_norms(self):
        o = Offset(-3, 4)
        assert o.manhattan() == 7
        assert o.chebyshev() == 4

    def test_origin_and_tuple(self):
        assert Offset.origin() == Offset(0, 0)
        assert Offset(1, 2).as_tuple() == (1, 2)

    def test_offsets_are_hashable_and_ordered(self):
        offsets = {Offset(0, 0), Offset(0, 0), Offset(1, 0)}
        assert len(offsets) == 2
        assert sorted([Offset(1, 0), Offset(0, 0)])[0] == Offset(0, 0)


class TestWindow:
    def test_basic_dimensions(self):
        w = Window(0, 0, 3, 2)
        assert w.width == 4
        assert w.height == 3
        assert w.area == 12
        assert not w.is_square()

    def test_square_constructor(self):
        w = Window.square(3)
        assert (w.width, w.height) == (3, 3)
        assert w.is_square()
        assert w.area == 9

    def test_square_with_origin(self):
        w = Window.square(2, Offset(5, 7))
        assert (w.x0, w.y0, w.x1, w.y1) == (5, 7, 6, 8)

    def test_degenerate_window_rejected(self):
        with pytest.raises(ValueError):
            Window(3, 0, 1, 0)

    def test_square_side_must_be_positive(self):
        with pytest.raises(ValueError):
            Window.square(0)

    def test_inflate_grows_symmetrically(self):
        w = Window.square(3).inflate(2)
        assert (w.x0, w.y0, w.x1, w.y1) == (-2, -2, 4, 4)
        assert w.area == 49

    def test_inflate_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            Window.square(3).inflate(-1)

    def test_translate(self):
        w = Window.square(2).translate(Offset(3, -1))
        assert (w.x0, w.y0) == (3, -1)

    def test_containment(self):
        w = Window.square(3)
        assert w.contains(Offset(2, 2))
        assert not w.contains(Offset(3, 0))
        assert w.contains_window(Window.square(2))
        assert not Window.square(2).contains_window(w)

    def test_intersection(self):
        a = Window(0, 0, 4, 4)
        b = Window(3, 3, 6, 6)
        c = Window(5, 5, 7, 7)
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_elements_iteration_row_major(self):
        elements = list(Window(0, 0, 1, 1).elements())
        assert elements == [Offset(0, 0), Offset(1, 0), Offset(0, 1), Offset(1, 1)]
        assert len(list(Window.square(4).elements())) == 16


class TestBounding:
    def test_bounding_window(self):
        w = bounding_window([Offset(0, 0), Offset(-1, 2), Offset(3, -2)])
        assert (w.x0, w.y0, w.x1, w.y1) == (-1, -2, 3, 2)

    def test_bounding_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_window([])

    def test_window_union(self):
        u = window_union(Window(0, 0, 1, 1), Window(3, -2, 4, 0))
        assert (u.x0, u.y0, u.x1, u.y1) == (0, -2, 4, 1)
