"""Unit tests for the plain-text table formatter."""

import pytest

from repro.utils.tables import Table, format_float, format_si


def test_format_float_plain_and_scientific():
    assert format_float(0) == "0"
    assert format_float(3.14159, digits=3) == "3.14"
    assert "e" in format_float(1.23e-9)
    assert "e" in format_float(4.5e12)


def test_format_si_prefixes():
    assert format_si(1500, "LUT") == "1.5kLUT"
    assert format_si(2_500_000) == "2.5M"
    assert format_si(3.2e9, "B/s") == "3.2GB/s"
    assert format_si(12) == "12"


def test_table_requires_columns():
    with pytest.raises(ValueError):
        Table([])


def test_table_row_arity_checked():
    table = Table(["a", "b"])
    with pytest.raises(ValueError):
        table.add_row([1])


def test_table_renders_header_and_rows():
    table = Table(["name", "value"], title="demo")
    table.add_row(["alpha", 1.25])
    table.add_row(["beta", 300])
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert any("alpha" in line and "1.25" in line for line in lines)
    assert any("beta" in line for line in lines)
    assert str(table) == text


def test_table_column_alignment():
    table = Table(["col"])
    table.add_row(["averylongcellvalue"])
    table.add_row(["x"])
    lines = table.render().splitlines()
    assert len(lines[-1]) <= len(lines[-2])
