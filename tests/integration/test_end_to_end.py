"""Integration tests: the full pipeline from C source to VHDL and simulation."""

import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.codegen.vhdl_writer import VhdlWriter
from repro.dse.explorer import DesignSpaceExplorer
from repro.estimation.throughput_model import ConePerformance, ThroughputModel
from repro.flow.hls_flow import FlowOptions, HlsFlow
from repro.frontend.extractor import extract_kernel_from_c
from repro.ir.dfg import build_dfg_from_cone
from repro.ir.operators import DataFormat
from repro.simulation.cone_simulator import (
    FunctionalConeSimulator,
    TileCascadeCycleSimulator,
)
from repro.simulation.frame import FrameSet
from repro.simulation.golden import GoldenExecutor
from repro.symbolic.cone_expression import ConeExpressionBuilder
from repro.synth.fpga_device import VIRTEX6_XC6VLX760
from repro.synth.synthesizer import Synthesizer


class TestCSourceToVhdl:
    """C in, synthesizable VHDL out — the paper's end-to-end promise."""

    def test_igf_c_to_vhdl(self):
        spec = get_algorithm("blur")
        kernel = extract_kernel_from_c(spec.c_source)
        cone = ConeExpressionBuilder(kernel).build(2, 2)
        graph = build_dfg_from_cone(cone)
        module = VhdlWriter(DataFormat.FIXED16).generate(graph)
        assert "entity" in module.code
        report = Synthesizer(VIRTEX6_XC6VLX760).synthesize(graph)
        assert report.area.luts > 0

    def test_flow_from_c_source_produces_pareto_set(self):
        spec = get_algorithm("blur")
        options = FlowOptions(data_format=DataFormat.FIXED16,
                              frame_width=256, frame_height=192, iterations=4,
                              window_sides=(2, 3, 4), max_depth=2,
                              max_cones_per_depth=4)
        result = HlsFlow(spec.c_source, options).run()
        assert len(result.pareto) >= 3
        areas = [p.area_luts for p in result.pareto]
        times = [p.seconds_per_frame for p in result.pareto]
        assert areas == sorted(areas)
        assert times == sorted(times, reverse=True)


class TestArchitectureCorrectness:
    """The architecture chosen by the DSE computes the same frames as software."""

    def test_selected_architecture_matches_golden(self, igf_kernel):
        explorer = DesignSpaceExplorer(igf_kernel, data_format=DataFormat.FIXED16,
                                       window_sides=(3, 4), max_depth=3,
                                       max_cones_per_depth=2)
        exploration = explorer.explore(3, 32, 24)
        point = exploration.best_fitting_point()
        window = point.architecture.window_side
        iterations = point.architecture.total_iterations

        frames = FrameSet.for_kernel(igf_kernel, 24, 32, seed=31)
        golden = GoldenExecutor(igf_kernel).run(frames, iterations)
        simulated = FunctionalConeSimulator(igf_kernel).run(
            frames, iterations, window, mode="expression")
        margin = iterations + 1
        np.testing.assert_allclose(
            simulated["f"].data[:, margin:-margin, margin:-margin],
            golden["f"].data[:, margin:-margin, margin:-margin],
            rtol=1e-9)

    def test_cycle_simulator_validates_dse_estimates(self, igf_kernel):
        """The analytic fps used by the DSE agrees with the cycle simulator."""
        explorer = DesignSpaceExplorer(igf_kernel, data_format=DataFormat.FIXED16,
                                       window_sides=(4,), max_depth=2,
                                       max_cones_per_depth=4,
                                       synthesize_all=True)
        exploration = explorer.explore(4, 256, 192)
        point = exploration.best_fitting_point()
        performance = {
            depth: ConePerformance(
                depth, point.architecture.window_side,
                exploration.characterization(point.architecture.window_side,
                                             depth).latency_cycles)
            for depth in point.architecture.distinct_depths}
        simulator = TileCascadeCycleSimulator(
            VIRTEX6_XC6VLX760, bytes_per_element=DataFormat.FIXED16.bytes)
        simulated = simulator.simulate_frame(point.architecture, performance, 256, 192)
        assert simulated.frames_per_second == pytest.approx(
            point.frames_per_second, rel=0.05)


@pytest.mark.slow
class TestPaperHeadlineClaims:
    """Coarse end-to-end checks of the Section 4 claims (shape, not digits)."""

    def test_igf_reaches_real_time_on_virtex6(self, igf_kernel):
        explorer = DesignSpaceExplorer(igf_kernel, data_format=DataFormat.FIXED16,
                                       window_sides=(7, 8, 9), max_depth=2,
                                       max_cones_per_depth=10)
        exploration = explorer.explore(10, 1024, 768)
        best = exploration.best_fitting_point()
        assert best.frames_per_second > 30.0

    def test_chambolle_is_slower_than_igf_but_usable(self, chambolle_kernel):
        explorer = DesignSpaceExplorer(chambolle_kernel,
                                       data_format=DataFormat.FIXED16,
                                       window_sides=(7, 8), max_depth=1,
                                       max_cones_per_depth=6)
        exploration = explorer.explore(11, 1024, 768)
        best = exploration.best_fitting_point()
        assert 5.0 < best.frames_per_second < 60.0
