"""Unit tests for dependency footprints and cone-domain geometry."""

import pytest

from repro.symbolic.dependency import (
    ConeDomain,
    analyze_footprint,
    cone_element_count,
    cone_input_count,
    cone_input_window,
    level_window,
)
from repro.utils.geometry import Offset, Window


def test_igf_footprint(igf_kernel):
    footprint = analyze_footprint(igf_kernel)
    assert footprint.size == 9
    assert footprint.radius == 1
    assert footprint.bounding.area == 9
    assert Offset(0, 0) in footprint.offsets


def test_chambolle_footprint_separates_readonly(chambolle_kernel):
    footprint = analyze_footprint(chambolle_kernel)
    assert footprint.radius == 1
    assert "p" in footprint.per_field_offsets
    assert "g" in footprint.readonly_offsets
    assert "g" not in footprint.per_field_offsets


def test_cone_input_window_inflation():
    window = Window.square(4)
    inflated = cone_input_window(window, radius=1, depth=3)
    assert inflated.width == 4 + 2 * 3
    with pytest.raises(ValueError):
        cone_input_window(window, radius=1, depth=0)


def test_level_window_bounds():
    window = Window.square(2)
    assert level_window(window, 1, 4, 4) == window
    assert level_window(window, 1, 4, 0).width == 10
    with pytest.raises(ValueError):
        level_window(window, 1, 4, 5)


@pytest.mark.parametrize("side,radius,depth,expected", [
    (1, 1, 1, 1),          # single element, one level
    (1, 1, 2, 1 + 9),      # figure 1 of the paper: cone of depth 2
    (4, 1, 1, 16),
    (2, 1, 2, 4 + 16),
    (3, 2, 2, 9 + 49),
])
def test_cone_element_count(side, radius, depth, expected):
    assert cone_element_count(side, radius, depth) == expected


def test_cone_element_count_scales_with_components():
    assert cone_element_count(3, 1, 2, components=2) == 2 * cone_element_count(3, 1, 2)


def test_cone_input_count():
    assert cone_input_count(1, 1, 2) == 25
    assert cone_input_count(4, 1, 2, components=2) == 2 * 64


class TestConeDomain:
    def test_figure1_cone(self):
        """The cone of Figure 1: depth 2, window of 4 elements (2x2)."""
        domain = ConeDomain(Window.square(2), depth=2, radius=1, components=1)
        assert domain.window_side == 2
        assert domain.output_elements == 4
        assert domain.input_window.width == 6
        assert domain.input_elements == 36
        assert domain.computed_elements == 4 + 16

    def test_level_windows_monotone(self):
        domain = ConeDomain(Window.square(3), depth=3, radius=1, components=1)
        widths = [w.width for w in domain.level_windows()]
        assert widths == [9, 7, 5, 3]

    def test_recompute_overhead_decreases_with_window(self):
        small = ConeDomain(Window.square(1), depth=3, radius=1, components=1)
        large = ConeDomain(Window.square(9), depth=3, radius=1, components=1)
        assert small.recompute_overhead() > large.recompute_overhead()
        # with an infinite window the overhead tends to the depth
        assert large.recompute_overhead() > 3.0

    def test_non_square_window_rejected(self):
        domain = ConeDomain(Window(0, 0, 3, 2), depth=1, radius=1, components=1)
        with pytest.raises(ValueError):
            _ = domain.window_side
