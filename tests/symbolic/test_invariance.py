"""Unit tests for the symbolic verification of the ISL properties."""

from repro.frontend.dsl import stencil_kernel
from repro.symbolic.invariance import (
    check_domain_narrowness,
    check_translation_invariance,
    verify_kernel,
)


def test_igf_is_isl(igf_kernel):
    report = verify_kernel(igf_kernel)
    assert report.is_translation_invariant
    assert report.is_domain_narrow
    assert report.is_isl
    assert report.radius == 1
    assert report.footprint_size == 9
    assert report.detail == ""


def test_chambolle_is_isl(chambolle_kernel):
    report = verify_kernel(chambolle_kernel)
    assert report.is_isl
    assert report.footprint_size > 0


def test_all_registered_algorithms_are_isl():
    from repro.algorithms import ALGORITHMS
    for spec in ALGORITHMS.values():
        report = verify_kernel(spec.kernel())
        assert report.is_isl, f"{spec.name} failed ISL verification: {report.detail}"


def test_translation_invariance_check(igf_kernel):
    assert check_translation_invariance(igf_kernel)


def test_wide_kernel_fails_narrowness():
    def define(k):
        f = k.field("f")
        k.update(f, f(10, 0) + f(-10, 0))

    wide = stencil_kernel("wide", define)
    assert not check_domain_narrowness(wide)
    report = verify_kernel(wide)
    assert report.is_translation_invariant
    assert not report.is_domain_narrow
    assert not report.is_isl
    assert "footprint too large" in report.detail


def test_narrowness_threshold_parameters(igf_kernel):
    assert not check_domain_narrowness(igf_kernel, max_footprint=4)
    assert check_domain_narrowness(igf_kernel, max_radius=1)
