"""Unit tests for multi-iteration cone expression construction (register reuse)."""

import pytest

from repro.simulation.frame import FrameSet
from repro.simulation.golden import GoldenExecutor
from repro.symbolic.cone_expression import ConeExpressionBuilder
from repro.symbolic.dependency import cone_element_count, cone_input_count
from repro.symbolic.expression import evaluate
from repro.utils.geometry import Offset


def test_element_registers_match_cone_geometry(igf_kernel):
    builder = ConeExpressionBuilder(igf_kernel)
    for window, depth in [(1, 1), (2, 2), (3, 2), (4, 3)]:
        cone = builder.build(window, depth)
        assert cone.element_register_count == cone_element_count(window, 1, depth)


def test_input_symbols_match_input_window(igf_kernel):
    builder = ConeExpressionBuilder(igf_kernel)
    cone = builder.build(3, 2)
    assert cone.input_count == cone_input_count(3, 1, 2)


def test_output_count_and_critical_path(igf_kernel):
    builder = ConeExpressionBuilder(igf_kernel)
    cone = builder.build(3, 4)
    assert cone.output_count == 9
    single = builder.build(1, 1)
    assert cone.critical_path_depth == pytest.approx(4 * single.critical_path_depth)


def test_register_growth_is_polynomial_not_exponential(igf_kernel):
    """The defining property of the register-reuse scheme (Section 3.2)."""
    builder = ConeExpressionBuilder(igf_kernel)
    registers = [builder.build(1, depth).register_count for depth in (1, 2, 3, 4, 5)]
    # without reuse the count would grow like 9^depth (59049 at depth 5); with
    # reuse it follows the number of distinct elements, i.e. quadratically.
    assert registers[4] < 9 ** 4
    growth = [b / a for a, b in zip(registers, registers[1:])]
    assert all(later < earlier for earlier, later in zip(growth, growth[1:]))


def test_operation_reuse_across_output_elements(igf_kernel):
    builder = ConeExpressionBuilder(igf_kernel)
    one = builder.build(1, 1)
    many = builder.build(3, 1)
    # 9 independent outputs would need 9x the operations; sharing across
    # neighbouring elements keeps it strictly below that.
    assert many.operation_count < 9 * one.operation_count


def test_chambolle_cone_carries_both_components(chambolle_kernel):
    builder = ConeExpressionBuilder(chambolle_kernel)
    cone = builder.build(2, 2)
    fields = {(field, component) for field, component, _ in cone.outputs}
    assert fields == {("p", 0), ("p", 1)}
    assert cone.domain.components == 2


def test_invalid_arguments_rejected(igf_kernel):
    builder = ConeExpressionBuilder(igf_kernel)
    with pytest.raises(ValueError):
        builder.build(0, 1)
    with pytest.raises(ValueError):
        builder.build(1, 0)


def test_cone_depth_two_equals_two_golden_iterations(igf_kernel):
    """Evaluating the depth-2 cone numerically must equal two kernel steps."""
    frames = FrameSet.for_kernel(igf_kernel, height=9, width=9, seed=3)
    golden = GoldenExecutor(igf_kernel).run(frames, 2)

    builder = ConeExpressionBuilder(igf_kernel)
    cone = builder.build(1, 2)
    centre = Offset(4, 4)
    bindings = {}
    for symbol in cone.input_symbols:
        bindings[(symbol.field, symbol.component, symbol.offset.dx,
                  symbol.offset.dy, symbol.level)] = frames[symbol.field].clamped_read(
            symbol.component, centre.dy + symbol.offset.dy, centre.dx + symbol.offset.dx)
    expr = cone.outputs[("f", 0, Offset(0, 0))]
    value = evaluate(expr, bindings)
    assert value == pytest.approx(golden["f"].data[0, centre.dy, centre.dx])


def test_params_override_changes_result(chambolle_kernel):
    default = ConeExpressionBuilder(chambolle_kernel).build(1, 1)
    overridden = ConeExpressionBuilder(chambolle_kernel,
                                       params={"tau": 0.5}).build(1, 1)
    assert default.register_count == overridden.register_count
