"""Unit tests for the hash-consed expression DAG."""

import math

import pytest

from repro.symbolic.expression import (
    Constant,
    ExpressionBuilder,
    FieldSymbol,
    OpKind,
    Operation,
    collect_symbols,
    count_nodes,
    count_operations,
    evaluate,
    expression_to_string,
)
from repro.utils.geometry import Offset


@pytest.fixture()
def builder():
    return ExpressionBuilder()


class TestInterning:
    def test_symbols_are_interned(self, builder):
        a = builder.symbol("f", Offset(1, 0))
        b = builder.symbol("f", Offset(1, 0))
        c = builder.symbol("f", Offset(0, 1))
        assert a is b
        assert a is not c

    def test_symbols_distinguish_component_and_level(self, builder):
        base = builder.symbol("p", Offset(0, 0), component=0, level=0)
        other_component = builder.symbol("p", Offset(0, 0), component=1, level=0)
        other_level = builder.symbol("p", Offset(0, 0), component=0, level=2)
        assert len({id(base), id(other_component), id(other_level)}) == 3

    def test_constants_are_interned(self, builder):
        assert builder.constant(0.5) is builder.constant(0.5)
        assert builder.constant(0.5) is not builder.constant(0.25)

    def test_operations_are_interned(self, builder):
        a = builder.symbol("f", Offset(0, 0))
        b = builder.symbol("f", Offset(1, 0))
        assert builder.add(a, b) is builder.add(a, b)

    def test_commutative_operands_canonicalised(self, builder):
        a = builder.symbol("f", Offset(0, 0))
        b = builder.symbol("f", Offset(1, 0))
        assert builder.add(a, b) is builder.add(b, a)
        assert builder.mul(a, b) is builder.mul(b, a)

    def test_non_commutative_order_preserved(self, builder):
        a = builder.symbol("f", Offset(0, 0))
        b = builder.symbol("f", Offset(1, 0))
        assert builder.sub(a, b) is not builder.sub(b, a)

    def test_node_count_tracks_interning(self, builder):
        a = builder.symbol("f", Offset(0, 0))
        b = builder.symbol("f", Offset(1, 0))
        builder.add(a, b)
        builder.add(a, b)
        assert builder.interned_node_count == 3
        assert builder.interned_operation_count == 1
        assert builder.interned_symbol_count == 2


class TestSimplification:
    def test_constant_folding(self, builder):
        result = builder.add(builder.constant(2.0), builder.constant(3.0))
        assert isinstance(result, Constant)
        assert result.value == 5.0

    def test_add_zero_identity(self, builder):
        x = builder.symbol("f", Offset(0, 0))
        assert builder.add(x, builder.constant(0.0)) is x
        assert builder.add(builder.constant(0.0), x) is x

    def test_mul_identities(self, builder):
        x = builder.symbol("f", Offset(0, 0))
        assert builder.mul(x, builder.constant(1.0)) is x
        zero = builder.mul(x, builder.constant(0.0))
        assert isinstance(zero, Constant) and zero.value == 0.0

    def test_sub_self_is_zero(self, builder):
        x = builder.symbol("f", Offset(0, 0))
        result = builder.sub(x, x)
        assert isinstance(result, Constant) and result.value == 0.0

    def test_div_by_one_and_zero(self, builder):
        x = builder.symbol("f", Offset(0, 0))
        assert builder.div(x, builder.constant(1.0)) is x
        with pytest.raises(ZeroDivisionError):
            builder.div(x, builder.constant(0.0))

    def test_min_max_of_same_operand(self, builder):
        x = builder.symbol("f", Offset(0, 0))
        assert builder.minimum(x, x) is x
        assert builder.maximum(x, x) is x

    def test_select_with_constant_condition(self, builder):
        a = builder.symbol("f", Offset(0, 0))
        b = builder.symbol("f", Offset(1, 0))
        assert builder.select(builder.constant(1.0), a, b) is a
        assert builder.select(builder.constant(0.0), a, b) is b

    def test_simplification_can_be_disabled(self):
        raw = ExpressionBuilder(simplify=False)
        x = raw.symbol("f", Offset(0, 0))
        result = raw.add(x, raw.constant(0.0))
        assert isinstance(result, Operation)


class TestTraversalAndEvaluation:
    def test_arity_enforced(self, builder):
        x = builder.symbol("f", Offset(0, 0))
        with pytest.raises(ValueError):
            builder.operation(OpKind.ADD, x)

    def test_count_nodes_shared_dag(self, builder):
        x = builder.symbol("f", Offset(0, 0))
        y = builder.symbol("f", Offset(1, 0))
        s = builder.add(x, y)
        expr = builder.mul(s, s)
        assert count_nodes([expr]) == 4  # x, y, add, mul

    def test_count_operations_by_kind(self, builder):
        x = builder.symbol("f", Offset(0, 0))
        y = builder.symbol("f", Offset(1, 0))
        expr = builder.mul(builder.add(x, y), builder.sub(x, y))
        counts = count_operations([expr])
        assert counts == {OpKind.ADD: 1, OpKind.SUB: 1, OpKind.MUL: 1}

    def test_collect_symbols(self, builder):
        x = builder.symbol("f", Offset(0, 0))
        y = builder.symbol("g", Offset(1, 0), level=-1)
        expr = builder.add(x, y)
        symbols = collect_symbols([expr])
        assert {s.field for s in symbols} == {"f", "g"}

    def test_evaluate_expression(self, builder):
        x = builder.symbol("f", Offset(0, 0))
        y = builder.symbol("f", Offset(1, 0))
        expr = builder.add(builder.mul(builder.constant(2.0), x), y)
        value = evaluate(expr, {("f", 0, 0, 0, 0): 3.0, ("f", 0, 1, 0, 0): 4.0})
        assert value == 10.0

    def test_evaluate_missing_binding_raises(self, builder):
        x = builder.symbol("f", Offset(0, 0))
        with pytest.raises(KeyError):
            evaluate(x, {})

    def test_evaluate_sqrt_and_select(self, builder):
        x = builder.symbol("f", Offset(0, 0))
        expr = builder.select(
            builder.operation(OpKind.CMP_GT, x, builder.constant(0.0)),
            builder.sqrt(x),
            builder.constant(0.0))
        assert evaluate(expr, {("f", 0, 0, 0, 0): 9.0}) == 3.0
        assert evaluate(expr, {("f", 0, 0, 0, 0): -1.0}) == 0.0

    def test_depth_tracking(self, builder):
        x = builder.symbol("f", Offset(0, 0))
        expr = builder.add(builder.add(x, builder.constant(1.0)), builder.constant(2.0))
        assert expr.depth == 2

    def test_expression_to_string(self, builder):
        x = builder.symbol("f", Offset(0, 0))
        text = expression_to_string(builder.add(x, builder.constant(1.0)))
        assert "add" in text and "f[+0,+0]" in text
