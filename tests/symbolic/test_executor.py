"""Unit tests for single-iteration symbolic execution."""

import pytest

from repro.symbolic.executor import READONLY_LEVEL, SymbolicExecutor
from repro.symbolic.expression import ExpressionBuilder, collect_symbols, evaluate
from repro.utils.geometry import Offset


def test_igf_execution_produces_nine_symbols(igf_kernel):
    executor = SymbolicExecutor(igf_kernel)
    frame = executor.execute_once()
    expr = frame.expression("f")
    symbols = collect_symbols([expr])
    assert len(symbols) == 9
    assert all(s.level == 0 for s in symbols)


def test_target_offset_translates_symbols(igf_kernel):
    executor = SymbolicExecutor(igf_kernel)
    frame = executor.execute_once(Offset(4, 7))
    offsets = {s.offset for s in collect_symbols([frame.expression("f")])}
    assert Offset(4, 7) in offsets
    assert Offset(5, 8) in offsets
    assert all(3 <= o.dx <= 5 and 6 <= o.dy <= 8 for o in offsets)


def test_chambolle_execution_covers_both_components(chambolle_kernel):
    executor = SymbolicExecutor(chambolle_kernel)
    frame = executor.execute_once()
    assert ("p", 0) in frame.expressions and ("p", 1) in frame.expressions
    symbols = collect_symbols([frame.expression("p", 0)])
    fields = {s.field for s in symbols}
    assert fields == {"p", "g"}
    readonly = [s for s in symbols if s.field == "g"]
    assert all(s.level == READONLY_LEVEL for s in readonly)


def test_parameters_are_folded_as_constants(chambolle_kernel):
    executor = SymbolicExecutor(chambolle_kernel, params={"tau": 0.5})
    assert executor.params["tau"] == 0.5
    frame = executor.execute_once()
    # no ParamRef survives symbolic execution: everything is numeric
    assert frame.expression("p", 0) is not None


def test_missing_parameter_raises():
    from repro.frontend.dsl import stencil_kernel
    from repro.frontend.kernel_ir import ParamRef, BinaryOp, BinOpKind, FieldRead, FieldUpdate, FieldDecl, StencilKernel
    from repro.utils.geometry import Offset as Off

    kernel = StencilKernel(
        name="k",
        fields=[FieldDecl("f")],
        updates=[FieldUpdate("f", 0, BinaryOp(BinOpKind.MUL, ParamRef("gain"),
                                              FieldRead("f", Off(0, 0))))],
        params={"gain": 1.0},
    )
    executor = SymbolicExecutor(kernel)
    executor.params.pop("gain")
    with pytest.raises(KeyError):
        executor.execute_once()


def test_symbolic_result_matches_numeric_execution(igf_kernel):
    """Evaluating the symbolic expression must equal running the kernel directly."""
    executor = SymbolicExecutor(igf_kernel)
    expr = executor.execute_once().expression("f")
    values = {}
    acc = 0.0
    weights = {(0, 0): 0.25,
               (1, 0): 0.125, (-1, 0): 0.125, (0, 1): 0.125, (0, -1): 0.125,
               (1, 1): 0.0625, (-1, 1): 0.0625, (1, -1): 0.0625, (-1, -1): 0.0625}
    for (dx, dy), weight in weights.items():
        value = 1.0 + 0.1 * dx + 0.01 * dy
        values[("f", 0, dx, dy, 0)] = value
        acc += weight * value
    assert evaluate(expr, values) == pytest.approx(acc)


def test_state_resolver_hook_is_used(igf_kernel):
    builder = ExpressionBuilder()
    executor = SymbolicExecutor(igf_kernel, builder)
    marker = builder.constant(42.0)
    frame = executor.execute_once(state_resolver=lambda f, c, off: marker)
    # with every read resolved to the same constant, the result is constant
    expr = frame.expression("f")
    assert evaluate(expr, {}) == pytest.approx(42.0)


def test_shared_builder_shares_subexpressions(igf_kernel):
    builder = ExpressionBuilder()
    executor = SymbolicExecutor(igf_kernel, builder)
    executor.execute_once(Offset(0, 0))
    count_after_first = builder.interned_node_count
    executor.execute_once(Offset(1, 0))
    count_after_second = builder.interned_node_count
    # the second execution shares the coefficient constants and the symbols of
    # the overlapping footprint, so it adds fewer nodes than the first
    assert count_after_second - count_after_first < count_after_first
