"""Unit tests for the declarative Workload spec."""

import pytest

from repro.api import FlowOptions, Workload
from repro.dse.constraints import DseConstraints
from repro.ir.operators import DataFormat
from repro.synth.fpga_device import VIRTEX2P_XC2VP30


class TestConstruction:
    def test_from_algorithm_resolves_kernel_and_iterations(self):
        workload = Workload.from_algorithm("blur")
        assert workload.name == "blur"
        assert workload.iterations == 10  # the registry default
        assert workload.resolve_kernel().name == "blur"

    def test_from_c_source(self):
        from repro.algorithms.gaussian import IGF_C_SOURCE
        workload = Workload.from_c(IGF_C_SOURCE)
        assert workload.name == "blur"
        assert workload.iterations == 10  # generic default

    def test_from_kernel(self, igf_kernel):
        workload = Workload.from_kernel(igf_kernel, iterations=4)
        assert workload.iterations == 4
        assert workload.resolve_kernel() is igf_kernel

    def test_needs_exactly_one_source(self, igf_kernel):
        with pytest.raises(ValueError, match="exactly one"):
            Workload(algorithm="blur", kernel=igf_kernel)
        with pytest.raises(ValueError, match="exactly one"):
            Workload()

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError):
            Workload.from_algorithm("definitely-not-registered")

    def test_window_sides_normalized(self):
        workload = Workload.from_algorithm("blur", window_sides=[3, 1, 3, 2])
        assert workload.window_sides == (1, 2, 3)


class TestHashingAndEquality:
    def test_hashable_and_equal_across_instances(self):
        a = Workload.from_algorithm("blur", frame_width=640, frame_height=480)
        b = Workload.from_algorithm("blur", frame_width=640, frame_height=480)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_structurally_identical_kernels_share_fingerprint(self, igf_kernel):
        from_registry = Workload.from_algorithm("blur")
        from_object = Workload.from_kernel(igf_kernel)
        assert (from_registry.kernel_fingerprint
                == from_object.kernel_fingerprint)

    def test_params_normalized_regardless_of_input_shape(self, igf_kernel):
        """An unsorted/int-valued params tuple must match the dict form."""
        as_tuple = Workload.from_kernel(igf_kernel,
                                        params=(("b", 2), ("a", 1)))
        as_dict = Workload.from_kernel(igf_kernel,
                                       params={"a": 1.0, "b": 2.0})
        assert as_tuple == as_dict
        assert as_tuple.kernel_fingerprint == as_dict.kernel_fingerprint
        assert (as_tuple.characterization_key()
                == as_dict.characterization_key())

    def test_different_kernels_differ(self):
        blur = Workload.from_algorithm("blur")
        jacobi = Workload.from_algorithm("jacobi")
        assert blur != jacobi
        assert blur.kernel_fingerprint != jacobi.kernel_fingerprint

    def test_replace_recomputes_fingerprint(self):
        blur = Workload.from_algorithm("blur")
        other = blur.replace(algorithm="jacobi")
        assert other.name == "jacobi"
        assert other.kernel_fingerprint != blur.kernel_fingerprint

    def test_replace_can_switch_kernel_source(self, igf_kernel):
        from repro.algorithms.jacobi import JACOBI_C_SOURCE
        from_registry = Workload.from_algorithm("blur")
        from_c = from_registry.replace(c_source=JACOBI_C_SOURCE)
        assert from_c.algorithm is None and from_c.name == "jacobi"
        from_obj = from_c.replace(kernel=igf_kernel)
        assert from_obj.c_source is None and from_obj.name == "blur"

    def test_replace_algorithm_resets_iterations_to_new_default(self):
        blur = Workload.from_algorithm("blur")          # resolves to 10
        jacobi = blur.replace(algorithm="jacobi")
        assert jacobi.iterations == 16                  # jacobi's default
        pinned = blur.replace(algorithm="jacobi", iterations=7)
        assert pinned.iterations == 7


class TestCharacterizationKey:
    def test_frame_and_constraints_do_not_change_the_key(self):
        a = Workload.from_algorithm("blur", frame_width=640, frame_height=480)
        b = Workload.from_algorithm(
            "blur", frame_width=1024, frame_height=768,
            constraints=DseConstraints(device_only=True))
        assert a.characterization_key() == b.characterization_key()

    def test_same_named_device_variants_do_not_alias(self):
        """A what-if variant of a device (same part name, different clock)
        must get its own characterization-cache entry."""
        import dataclasses
        from repro.synth.fpga_device import VIRTEX6_XC6VLX760
        faster = dataclasses.replace(
            VIRTEX6_XC6VLX760,
            typical_clock_hz=2 * VIRTEX6_XC6VLX760.typical_clock_hz)
        stock = Workload.from_algorithm("blur")
        what_if = stock.replace(device=faster)
        assert stock.characterization_key() != what_if.characterization_key()

    def test_device_and_format_change_the_key(self):
        base = Workload.from_algorithm("blur")
        other_device = Workload.from_algorithm("blur",
                                               device=VIRTEX2P_XC2VP30)
        other_format = Workload.from_algorithm(
            "blur", data_format=DataFormat.FIXED32)
        assert base.characterization_key() != other_device.characterization_key()
        assert base.characterization_key() != other_format.characterization_key()


class TestOptionsBridge:
    def test_options_round_trip(self, igf_kernel):
        options = FlowOptions(frame_width=256, frame_height=128, iterations=6,
                              window_sides=(1, 2, 4), max_depth=3,
                              synthesize_all=True)
        workload = Workload.from_options(igf_kernel, options)
        assert workload.options() == options

    def test_workload_serialization_round_trip(self, igf_kernel):
        workload = Workload.from_kernel(
            igf_kernel, iterations=4, window_sides=(1, 2),
            constraints=DseConstraints(max_area_luts=1e5))
        restored = Workload.from_dict(workload.to_dict())
        assert restored == workload
        assert restored.characterization_key() == workload.characterization_key()
