"""Multi-process ``ArtifactStore`` stress tests (ISSUE 3 satellite).

Regression net over PR 2's atomic-write claim: N worker *processes*
hammering one store directory — racing writers on the same keys, racing
cold sessions, concurrent warm readers — must never produce a corrupted or
truncated artifact, and warm rereads must report correct
``store_disk_hits`` accounting.
"""

import json
import os
import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.api import ArtifactStore, Session, Workload
from repro.api import store as store_module

pytestmark = [pytest.mark.par, pytest.mark.slow]

SMALL = dict(iterations=4, window_sides=(1, 2, 3), max_depth=2,
             max_cones_per_depth=3)

#: Shared keys every hammering worker writes/reads, plus a payload large
#: enough that a torn (non-atomic) write could not still parse as JSON.
KEYS = [f"stress-key-{index}" for index in range(6)]
PADDING = "x" * 8192


def expected_payload(key):
    return {"key": key, "checksum": sum(map(ord, key)), "padding": PADDING}


def hammer_worker(args):
    """One worker process: repeated put/get cycles over the shared keys.

    Every writer stores the same (deterministic) payload per key, so any
    read that returns a *different* payload — or bumps the store's corrupt
    counter — means a torn or interleaved write leaked through.
    """
    store_dir, rounds = args
    store = ArtifactStore(store_dir)
    mismatches = 0
    for _ in range(rounds):
        for key in KEYS:
            store.put("result", key, expected_payload(key))
            read = store.get("result", key)
            if read is not None and read != expected_payload(key):
                mismatches += 1
    return mismatches, store.corrupt


def cold_session_worker(args):
    """One worker process running a full workload against a shared store."""
    store_dir, payload = args
    session = Session(store=store_dir)
    result = session.run(Workload.from_dict(payload))
    stats = session.stats
    return (len(result.pareto), stats.synthesis_runs, stats.store_disk_hits,
            stats.store_disk_misses)


class TestConcurrentWriters:
    def test_racing_writers_never_corrupt_artifacts(self, tmp_path):
        store_dir = str(tmp_path / "store")
        with ProcessPoolExecutor(max_workers=4) as pool:
            outcomes = list(pool.map(hammer_worker,
                                     [(store_dir, 12)] * 4))
        for mismatches, corrupt in outcomes:
            assert mismatches == 0
            assert corrupt == 0
        # every artifact left on disk is complete and parses cleanly
        store = ArtifactStore(store_dir)
        paths = store.artifact_paths()
        assert len(paths) == len(KEYS)
        for path in paths:
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
            assert envelope["schema"] == store_module.SCHEMA_VERSION
            assert envelope["payload"] == expected_payload(
                envelope["key"])
        # no interrupted-write temp files survive a clean shutdown
        leftovers = [name for _dir, _subdirs, names in os.walk(store_dir)
                     for name in names if name.endswith(".tmp")]
        assert leftovers == []

    def test_reread_after_the_storm_counts_clean_hits(self, tmp_path):
        store_dir = str(tmp_path / "store")
        with ProcessPoolExecutor(max_workers=4) as pool:
            list(pool.map(hammer_worker, [(store_dir, 6)] * 4))
        store = ArtifactStore(store_dir)
        for key in KEYS:
            assert store.get("result", key) == expected_payload(key)
        assert store.hits == len(KEYS)
        assert store.misses == 0
        assert store.corrupt == 0


class TestConcurrentSessions:
    def test_racing_cold_sessions_leave_a_valid_store(self, tmp_path):
        """Several processes starting cold on one empty store directory at
        once: every artifact must land complete, and a fresh warm session
        must then resume with zero synthesis."""
        store_dir = str(tmp_path / "store")
        payload = Workload.from_algorithm("blur", **SMALL).to_dict()
        with ProcessPoolExecutor(max_workers=4) as pool:
            outcomes = list(pool.map(cold_session_worker,
                                     [(store_dir, payload)] * 4))
        assert all(pareto > 0 for pareto, _runs, _hits, _misses in outcomes)
        for path in ArtifactStore(store_dir).artifact_paths():
            with open(path, "r", encoding="utf-8") as handle:
                assert json.load(handle)["schema"] == \
                    store_module.SCHEMA_VERSION

        warm = Session(store=store_dir)
        warm.run(Workload.from_dict(payload))
        assert warm.stats.synthesis_runs == 0
        assert warm.stats.store_disk_hits == 1
        assert warm.stats.store_disk_misses == 0

    def test_warm_readers_report_correct_disk_hits(self, tmp_path):
        """N processes rereading one stored workload: each must be served
        from disk (one result hit, zero synthesis, zero misses)."""
        store_dir = str(tmp_path / "store")
        workload = Workload.from_algorithm("blur", **SMALL)
        Session(store=store_dir).run(workload)

        with ProcessPoolExecutor(max_workers=4) as pool:
            outcomes = list(pool.map(cold_session_worker,
                                     [(store_dir, workload.to_dict())] * 4))
        for pareto, synthesis_runs, disk_hits, disk_misses in outcomes:
            assert pareto > 0
            assert synthesis_runs == 0
            assert disk_hits == 1
            assert disk_misses == 0


class TestStorePickling:
    def test_store_handles_cross_process_boundaries(self, tmp_path):
        """Executor workers may receive store handles: pickling must drop
        the process-local lock and keep the root/counters usable."""
        store = ArtifactStore(str(tmp_path / "store"))
        store.put("result", "k", {"v": 1})
        clone = pickle.loads(pickle.dumps(store))
        assert clone.root == store.root
        assert clone.writes == store.writes
        assert clone.get("result", "k") == {"v": 1}
        # the clone's lock is fresh and functional
        clone.put("result", "k2", {"v": 2})
        assert clone.get("result", "k2") == {"v": 2}
