"""Thread-safety tests for session caches and store statistics.

ISSUE 5 satellites: racing ``Session.run`` callers on one cold
characterization key must synthesize exactly once (the service tier
shares one session across every request thread), and the
store-traffic/statistics counters must be atomic — no increment lost to a
read-modify-write race, however many threads report at once.
"""

import threading

import pytest

from repro.api import ArtifactStore, Session, Workload

SMALL = dict(iterations=4, window_sides=(1, 2, 3), max_depth=2,
             max_cones_per_depth=3, frame_width=320, frame_height=240)


def workload(**overrides):
    return Workload.from_algorithm("blur", **{**SMALL, **overrides})


class TestColdKeyRace:
    def test_racing_threads_on_one_cold_key_synthesize_once(self):
        """16 threads hit one cold workload simultaneously: the per-key
        lock must let exactly one of them pay the synthesis."""
        baseline = Session()
        baseline.run(workload())
        single_run_synthesis = baseline.stats.synthesis_runs
        assert single_run_synthesis > 0

        session = Session()
        barrier = threading.Barrier(16)
        results, errors = [], []
        lock = threading.Lock()

        def race():
            barrier.wait()
            try:
                result = session.run(workload())
            except Exception as error:  # pragma: no cover - diagnostic
                with lock:
                    errors.append(error)
            else:
                with lock:
                    results.append(result)

        threads = [threading.Thread(target=race) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert len(results) == 16
        stats = session.stats
        assert stats.synthesis_runs == single_run_synthesis
        assert stats.characterization_cache_misses == 1
        assert stats.workloads_run == 16
        # every caller got an equivalent result over the shared artifacts
        first = results[0].exploration
        assert all(r.exploration.design_points == first.design_points
                   for r in results)

    def test_racing_threads_cold_store_write_once_each_artifact(self, tmp_path):
        """With a persistent store, racing cold threads must end with the
        result artifact on disk exactly once-readable and consistent."""
        session = Session(store=str(tmp_path))
        barrier = threading.Barrier(8)

        def race():
            barrier.wait()
            session.run(workload())

        threads = [threading.Thread(target=race) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        warm = Session(store=str(tmp_path))
        warm.run(workload())
        assert warm.stats.synthesis_runs == 0
        assert warm.stats.store_disk_hits >= 1


class TestCounterAtomicity:
    def test_session_store_counters_never_lose_updates(self):
        """8 threads x 500 events per kind: the dedicated stats lock must
        land every single increment."""
        session = Session()
        barrier = threading.Barrier(8)

        def hammer():
            barrier.wait()
            for _ in range(500):
                session._record_store_event("hit")
                session._record_store_event("miss")
                session._record_store_event("write")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        stats = session.stats
        assert stats.store_disk_hits == 8 * 500
        assert stats.store_disk_misses == 8 * 500
        assert stats.store_writes == 8 * 500

    def test_artifact_store_counters_exact_under_threads(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        barrier = threading.Barrier(8)

        def hammer(worker):
            barrier.wait()
            for index in range(50):
                key = f"worker-{worker}-key-{index}"
                assert store.get("result", key) is None      # one miss
                store.put("result", key, {"worker": worker})  # one write
                assert store.get("result", key) is not None   # one hit

        threads = [threading.Thread(target=hammer, args=(n,))
                   for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        counters = store.counters()
        assert counters["misses"] == 8 * 50
        assert counters["writes"] == 8 * 50
        assert counters["hits"] == 8 * 50
        assert counters["corrupt"] == 0

    def test_counters_snapshot_is_atomic_against_traffic(self, tmp_path):
        """Snapshots taken mid-hammer must always satisfy the invariant
        hits + misses == total gets issued so far (never torn reads)."""
        store = ArtifactStore(str(tmp_path))
        stop = threading.Event()
        violations = []

        def reader():
            while not stop.is_set():
                snapshot = store.counters()
                if snapshot["hits"] + snapshot["misses"] > 4000:
                    violations.append(snapshot)

        observer = threading.Thread(target=reader)
        observer.start()
        for index in range(4000):
            store.get("result", f"missing-{index % 7}")
        stop.set()
        observer.join()
        assert not violations

    def test_on_event_registration_races_with_emission(self):
        """Registering callbacks while events fire must neither crash nor
        drop the events the established callback sees."""
        session = Session()
        seen = []
        session.on_event(lambda event: seen.append(event.kind))
        stop = threading.Event()

        def register_forever():
            while not stop.is_set():
                session.on_event(lambda event: None)

        registrar = threading.Thread(target=register_forever)
        registrar.start()
        try:
            for _ in range(3):
                session.run(workload())
        finally:
            stop.set()
            registrar.join()
        assert seen.count("workload-finished") == 3
