"""Tests for the pluggable backend registry (ISSUE 2 tentpole).

The acceptance-critical property: a backend registered through
``register_backend`` is exercised end-to-end by ``Session.run`` without
modifying any ``repro`` module.
"""

import textwrap

import pytest

from repro.api import (
    AreaEstimator,
    BackendError,
    CatalogDeviceProvider,
    DeviceProvider,
    Session,
    SynthesizerBackend,
    ThroughputEstimator,
    Workload,
    create_backend,
    get_backend,
    list_backends,
    list_devices,
    register_backend,
    register_device,
    resolve_device,
    unregister_backend,
)
from repro.api import registry as registry_module
from repro.estimation import RegisterAreaModel, ThroughputModel
from repro.synth import FpgaDevice, Synthesizer
from repro.synth.fpga_device import SPARTAN6_XC6SLX45, VIRTEX6_XC6VLX760

SMALL = dict(iterations=4, window_sides=(1, 2, 3), max_depth=2,
             max_cones_per_depth=3)


@pytest.fixture()
def scratch_backend():
    """Yield a registration helper that cleans up after the test."""
    registered = []

    def add(kind, name, factory, **kwargs):
        register_backend(kind, name, factory, **kwargs)
        registered.append((kind, name))

    yield add
    for kind, name in registered:
        unregister_backend(kind, name)


class TestRegistryBasics:
    def test_builtins_are_registered(self):
        backends = list_backends()
        assert "analytic" in backends["synthesizer"]
        assert "register-model" in backends["area"]
        assert "analytic" in backends["throughput"]
        assert "builtin" in backends["device"]

    def test_builtin_factories_are_the_concrete_classes(self):
        assert get_backend("synthesizer", "analytic") is Synthesizer
        assert get_backend("area", "register-model") is RegisterAreaModel
        assert get_backend("throughput", "analytic") is ThroughputModel

    def test_builtins_satisfy_the_protocols(self):
        synthesizer = create_backend("synthesizer", "analytic",
                                     device=VIRTEX6_XC6VLX760)
        assert isinstance(synthesizer, SynthesizerBackend)
        assert isinstance(create_backend("area", "register-model"),
                          AreaEstimator)
        assert isinstance(
            create_backend("throughput", "analytic",
                           device=VIRTEX6_XC6VLX760, readonly_components=0),
            ThroughputEstimator)
        assert isinstance(create_backend("device", "builtin"), DeviceProvider)

    def test_unknown_kind_and_name_raise(self):
        with pytest.raises(BackendError, match="unknown backend kind"):
            get_backend("compiler", "gcc")
        with pytest.raises(BackendError, match="unknown synthesizer backend"):
            get_backend("synthesizer", "vivado-2099")

    def test_lookup_is_case_insensitive(self, scratch_backend):
        scratch_backend("synthesizer", "MyTool", Synthesizer)
        assert get_backend("synthesizer", "mytool") is Synthesizer
        assert get_backend("synthesizer", "MYTOOL") is Synthesizer

    def test_duplicate_registration_requires_replace(self, scratch_backend):
        scratch_backend("synthesizer", "dup", Synthesizer)
        with pytest.raises(BackendError, match="already registered"):
            register_backend("synthesizer", "dup", Synthesizer)
        register_backend("synthesizer", "dup", Synthesizer, replace=True)

    def test_backend_error_message_is_unquoted(self):
        try:
            get_backend("synthesizer", "nope")
        except BackendError as error:
            assert str(error).startswith("unknown synthesizer backend")


class TestCustomBackendEndToEnd:
    def test_custom_synthesizer_runs_through_session(self, scratch_backend):
        """ISSUE 2 acceptance: a backend registered via register_backend is
        exercised end-to-end through Session.run, no repro module edited."""

        instances = []

        class RecordingSynthesizer(Synthesizer):
            def __init__(self, device, library):
                super().__init__(device, library)
                instances.append(self)

        scratch_backend("synthesizer", "recording", RecordingSynthesizer)
        workload = Workload.from_algorithm("blur", synthesizer="recording",
                                           **SMALL)
        result = Session().run(workload)
        assert result.pareto
        assert instances, "the registered factory was never invoked"
        assert sum(s.runs for s in instances) > 0
        # the explored characterizations really came from the custom backend
        assert any(c.synthesized
                   for c in result.exploration.characterizations.values())

    def test_custom_area_estimator_changes_estimates(self, scratch_backend):
        class InflatedAreaModel(RegisterAreaModel):
            def estimate_series(self, register_counts):
                import dataclasses
                return [dataclasses.replace(
                            estimate,
                            estimated_area_luts=estimate.estimated_area_luts
                            * 2.0)
                        for estimate in super().estimate_series(
                            register_counts)]

        scratch_backend("area", "inflated", InflatedAreaModel)
        baseline = Session().run(Workload.from_algorithm("blur", **SMALL))
        inflated = Session().run(Workload.from_algorithm(
            "blur", area_estimator="inflated", **SMALL))
        estimated = [(w, d) for (w, d), c
                     in baseline.exploration.characterizations.items()
                     if not c.synthesized]
        assert estimated
        for key in estimated:
            assert (inflated.exploration.characterizations[key].area_luts
                    > baseline.exploration.characterizations[key].area_luts)

    def test_backend_names_split_the_characterization_cache(
            self, scratch_backend):
        scratch_backend("synthesizer", "alt", Synthesizer)
        base = Workload.from_algorithm("blur", **SMALL)
        alt = base.replace(synthesizer="alt")
        assert base.characterization_key() != alt.characterization_key()

    def test_backend_names_survive_serialization(self):
        workload = Workload.from_algorithm("blur", **SMALL)
        payload = workload.to_dict()
        assert payload["synthesizer"] == "analytic"
        restored = Workload.from_dict(payload)
        assert restored.synthesizer == "analytic"
        assert restored == workload


class TestDeviceRegistry:
    def test_builtin_catalog_is_resolvable(self):
        devices = list_devices()
        # the four constants of synth/fpga_device are all registered
        for name in ("XC6VLX760", "XC6VLX240T", "XC2VP30", "XC6SLX45"):
            assert name in devices
        assert resolve_device("xc6vlx760") is VIRTEX6_XC6VLX760

    def test_instances_pass_through(self):
        assert resolve_device(SPARTAN6_XC6SLX45) is SPARTAN6_XC6SLX45

    def test_unknown_device_lists_available(self):
        with pytest.raises(BackendError, match="unknown device"):
            resolve_device("XC999")

    def test_workload_accepts_registered_device_names(self):
        workload = Workload.from_algorithm("blur", device="xc2vp30", **SMALL)
        assert isinstance(workload.device, FpgaDevice)
        assert workload.device.name == "XC2VP30"

    def test_register_device_makes_name_resolvable(self, scratch_backend):
        board = FpgaDevice(
            name="TEST9000", family="Test", slice_luts=1000, slice_ffs=2000,
            dsp_slices=4, bram_kbits=100, typical_clock_hz=1e8,
            offchip_bandwidth_bytes_per_s=1e9)
        register_device(board)
        try:
            assert resolve_device("test9000") is board
            workload = Workload.from_algorithm("blur", device="TEST9000",
                                               **SMALL)
            assert workload.device is board
        finally:
            # keep the shared custom catalog clean for other tests
            registry_module._custom_devices._catalog.pop("TEST9000", None)

    def test_register_device_overrides_builtin_model(self):
        """A later-registered device deliberately shadows a built-in part
        name (e.g. a corrected capacity model) instead of being silently
        ignored."""
        import dataclasses
        corrected = dataclasses.replace(VIRTEX6_XC6VLX760,
                                        slice_luts=475_239)
        register_device(corrected)
        try:
            assert resolve_device("XC6VLX760") is corrected
        finally:
            registry_module._custom_devices._catalog.pop("XC6VLX760", None)
        assert resolve_device("XC6VLX760") is VIRTEX6_XC6VLX760

    def test_custom_provider_via_register_backend(self, scratch_backend):
        board = FpgaDevice(
            name="FAMX1", family="FamX", slice_luts=5000, slice_ffs=10000,
            dsp_slices=8, bram_kbits=200, typical_clock_hz=2e8,
            offchip_bandwidth_bytes_per_s=2e9)
        scratch_backend("device", "famx",
                        lambda: CatalogDeviceProvider({board.name: board}))
        assert resolve_device("famx1") is board


class TestEnvDiscovery:
    def test_repro_backends_modules_are_imported(self, tmp_path, monkeypatch):
        plugin = tmp_path / "repro_test_plugin.py"
        plugin.write_text(textwrap.dedent("""\
            from repro.api import register_backend, unregister_backend
            from repro.synth import Synthesizer

            LOADED = []

            def register_repro_backends():
                unregister_backend("synthesizer", "env-plugin")
                register_backend("synthesizer", "env-plugin", Synthesizer)
                LOADED.append(True)
            """))
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setenv(registry_module.DISCOVERY_ENV_VAR,
                           "repro_test_plugin")
        registry_module.reset_discovery()
        try:
            assert get_backend("synthesizer", "env-plugin") is Synthesizer
        finally:
            unregister_backend("synthesizer", "env-plugin")
            registry_module.reset_discovery()

    def test_broken_plugin_warns_instead_of_crashing(self, monkeypatch):
        monkeypatch.setenv(registry_module.DISCOVERY_ENV_VAR,
                           "definitely_not_a_module_xyz")
        registry_module.reset_discovery()
        try:
            with pytest.warns(RuntimeWarning, match="failed to load"):
                imported = registry_module.discover_backends(force=True)
            assert imported == []
            # the registry keeps working
            assert get_backend("synthesizer", "analytic") is Synthesizer
        finally:
            registry_module.reset_discovery()
