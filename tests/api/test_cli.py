"""Smoke tests for every ``python -m repro`` subcommand (ISSUE 1 satellite)."""

import json
import os
import subprocess
import sys

import pytest

from repro.api import FlowResult
from repro.api.cli import main, parse_frame, parse_windows


FAST = ["--windows", "1,2,3", "--max-depth", "2", "--iterations", "4",
        "--frame", "128x96", "--quiet"]


class TestArgumentParsing:
    def test_parse_frame(self):
        assert parse_frame("1024x768") == (1024, 768)
        assert parse_frame("640X480") == (640, 480)
        with pytest.raises(ValueError, match="WxH"):
            parse_frame("huge")

    def test_parse_windows(self):
        assert parse_windows(None) is None
        assert parse_windows("1,2,3") == (1, 2, 3)


class TestListCommand:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "blur" in out and "chamb" in out

    def test_list_json_with_devices(self, capsys):
        assert main(["list", "--json", "--devices"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "blur" in payload["algorithms"]
        assert "XC6VLX760" in payload["devices"]


class TestExploreCommand:
    def test_explore_table(self, capsys):
        assert main(["explore", "blur", *FAST]) == 0
        out = capsys.readouterr().out
        assert "Pareto" in out and "blur" in out

    def test_explore_json_round_trips(self, capsys):
        assert main(["explore", "blur", "--json", *FAST]) == 0
        payload = json.loads(capsys.readouterr().out)
        result = FlowResult.from_dict(payload)
        assert result.kernel.name == "blur"
        assert result.pareto
        again = FlowResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert again.pareto == result.pareto

    def test_explore_output_file(self, tmp_path, capsys):
        target = tmp_path / "blur.json"
        assert main(["explore", "blur", "-o", str(target), *FAST]) == 0
        capsys.readouterr()
        result = FlowResult.from_dict(json.loads(target.read_text()))
        assert result.kernel.name == "blur"

    def test_explore_unknown_algorithm_fails_cleanly(self, capsys):
        assert main(["explore", "not-an-algorithm", *FAST]) == 2
        assert "error" in capsys.readouterr().err

    def test_explore_with_constraints(self, capsys):
        assert main(["explore", "blur", "--device-only",
                     "--min-fps", "1", *FAST]) == 0
        out = capsys.readouterr().out
        assert "Pareto" in out


class TestCodegenCommand:
    def test_codegen_writes_vhdl(self, tmp_path, capsys):
        out_dir = tmp_path / "vhdl"
        assert main(["codegen", "blur", "--out", str(out_dir), *FAST]) == 0
        files = os.listdir(out_dir)
        assert "isl_fixed_pkg.vhd" in files
        assert any(name.endswith("_top.vhd") for name in files)

    def test_codegen_listing_only(self, capsys):
        assert main(["codegen", "blur", *FAST]) == 0
        out = capsys.readouterr().out
        assert ".vhd" in out


class TestSweepCommand:
    def test_sweep_json_shares_characterizations(self, capsys):
        assert main(["sweep", "--algorithms", "blur,jacobi",
                     "--frames", "128x96,256x192",
                     "--windows", "1,2,3", "--max-depth", "2",
                     "--iterations", "4", "--json", "--quiet"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["workloads"]) == 4
        session = payload["session"]
        assert session["workloads_run"] == 4
        assert session["characterization_cache_misses"] == 2
        assert session["characterization_cache_hits"] >= 2
        # 2 kernels x 3 windows x 2 depths unique shapes bound the runs
        assert session["synthesis_runs"] <= 12

    def test_sweep_formats_axis(self, capsys):
        """ISSUE 4: multi-device/multi-format frontiers from one sweep (the
        enumerated space is shared through the columnar table)."""
        assert main(["sweep", "--algorithms", "blur",
                     "--devices", "xc6vlx760,xc2vp30",
                     "--formats", "fixed16,fixed32",
                     "--frames", "128x96", "--windows", "1,2,3",
                     "--max-depth", "2", "--iterations", "4",
                     "--json", "--quiet"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["workloads"]) == 4
        scenarios = {(entry["device"], entry["format"])
                     for entry in payload["workloads"]}
        assert scenarios == {("XC6VLX760", "fixed16"),
                             ("XC6VLX760", "fixed32"),
                             ("XC2VP30", "fixed16"),
                             ("XC2VP30", "fixed32")}
        assert all(entry["pareto_points"] > 0
                   for entry in payload["workloads"])

    def test_sweep_rejects_unknown_format(self, capsys):
        assert main(["sweep", "--algorithms", "blur",
                     "--formats", "fixed8", "--quiet"]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_table(self, capsys):
        assert main(["sweep", "--algorithms", "blur",
                     "--frames", "128x96", "--windows", "1,2",
                     "--max-depth", "2", "--iterations", "4",
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "swept 1 workloads" in out


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        """The module entry point works end to end in a real interpreter."""
        import repro
        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True, text=True, env=env, timeout=120)
        assert completed.returncode == 0
        assert "blur" in completed.stdout
