"""JSON round-tripping of every result artifact (ISSUE 1 satellite).

Each test serializes with ``json.dumps`` (not just ``to_dict``) so tuple/int
key coercions that only bite after a real JSON pass are covered.
"""

import json

import pytest

from repro.api import FlowOptions, FlowResult, Session, Workload
from repro.dse.constraints import DseConstraints
from repro.dse.design_point import DesignPoint
from repro.dse.explorer import ConeCharacterization, ExplorationResult
from repro.estimation.throughput_model import ArchitecturePerformance
from repro.frontend.kernel_ir import StencilKernel
from repro.synth.fpga_device import VIRTEX6_XC6VLX760


SMALL = dict(iterations=4, window_sides=(1, 2, 3), max_depth=2,
             max_cones_per_depth=3, frame_width=128, frame_height=96)


@pytest.fixture(scope="module")
def small_result():
    return Session().run(Workload.from_algorithm("blur", **SMALL))


def through_json(payload):
    return json.loads(json.dumps(payload))


class TestDesignPointRoundTrip:
    def test_design_point(self, small_result):
        for point in small_result.pareto:
            restored = DesignPoint.from_dict(through_json(point.to_dict()))
            assert restored == point
            assert restored.label == point.label
            assert restored.seconds_per_frame == point.seconds_per_frame

    def test_performance(self, small_result):
        performance = small_result.pareto[0].performance
        restored = ArchitecturePerformance.from_dict(
            through_json(performance.to_dict()))
        assert restored == performance


class TestExplorationRoundTrip:
    def test_exploration_result(self, small_result):
        exploration = small_result.exploration
        restored = ExplorationResult.from_dict(
            through_json(exploration.to_dict()))
        assert restored == exploration

    def test_pareto_set_identical_and_shared_with_design_points(
            self, small_result):
        restored = ExplorationResult.from_dict(
            through_json(small_result.exploration.to_dict()))
        assert restored.pareto == small_result.exploration.pareto
        # Pareto entries are the same objects as their design_points entries,
        # exactly as in a freshly explored result.
        for point in restored.pareto:
            assert any(point is candidate
                       for candidate in restored.design_points)

    def test_characterizations_keyed_by_shape(self, small_result):
        restored = ExplorationResult.from_dict(
            through_json(small_result.exploration.to_dict()))
        assert set(restored.characterizations) == set(
            small_result.exploration.characterizations)
        for key, characterization in restored.characterizations.items():
            assert isinstance(characterization, ConeCharacterization)
            assert characterization == \
                small_result.exploration.characterizations[key]


class TestFlowResultRoundTrip:
    def test_flow_result_full_round_trip(self, small_result):
        restored = FlowResult.from_dict(through_json(small_result.to_dict()))
        assert restored == small_result
        assert restored.pareto == small_result.pareto

    def test_kernel_survives(self, small_result):
        restored = FlowResult.from_dict(through_json(small_result.to_dict()))
        assert restored.kernel == small_result.kernel
        assert (restored.kernel.fingerprint()
                == small_result.kernel.fingerprint())

    def test_options_survive(self, small_result):
        restored = FlowOptions.from_dict(
            through_json(small_result.options.to_dict()))
        assert restored == small_result.options
        assert restored.device == VIRTEX6_XC6VLX760


class TestSupportingTypes:
    def test_kernel_round_trip_all_algorithms(self):
        from repro.algorithms import ALGORITHMS
        for spec in ALGORITHMS.values():
            kernel = spec.kernel()
            restored = StencilKernel.from_dict(through_json(kernel.to_dict()))
            assert restored == kernel
            assert restored.fingerprint() == kernel.fingerprint()

    def test_fingerprint_stable_for_int_valued_kernels(self):
        """A kernel built with int params/literals must fingerprint the same
        after a JSON round-trip (from_dict coerces numbers to float)."""
        from repro.frontend.kernel_ir import (
            BinaryOp, BinOpKind, FieldDecl, FieldRead, FieldUpdate, Literal,
            ParamRef,
        )
        from repro.utils.geometry import Offset

        kernel = StencilKernel(
            name="intish",
            fields=[FieldDecl("f")],
            updates=[FieldUpdate("f", 0, BinaryOp(
                BinOpKind.MUL, ParamRef("a"),
                BinaryOp(BinOpKind.ADD, Literal(4),
                         FieldRead("f", Offset(0, 0)))))],
            params={"a": 1},
        )
        restored = StencilKernel.from_dict(through_json(kernel.to_dict()))
        assert restored == kernel
        assert restored.fingerprint() == kernel.fingerprint()

    def test_constraints_round_trip(self):
        constraints = DseConstraints(min_frames_per_second=30.0,
                                     max_area_luts=5e5, device_only=True)
        assert DseConstraints.from_dict(
            through_json(constraints.to_dict())) == constraints

    def test_constrained_result_round_trips(self):
        workload = Workload.from_algorithm(
            "blur", constraints=DseConstraints(device_only=True), **SMALL)
        result = Session().run(workload)
        restored = FlowResult.from_dict(through_json(result.to_dict()))
        assert restored == result
        assert restored.options.constraints == workload.constraints
