"""Tests for the pluggable batch-execution layer (ISSUE 3 tentpole).

The headline property: ``Session.run_many`` returns *byte-identical*
serialized results whatever the strategy (``serial``/``threads``/
``processes``), the worker count, or the submission order — parallelism is
a scheduling concern, never a semantics concern.  The scheduling itself is
deterministic too: shard assignment depends only on the multiset of
characterization keys in the batch.
"""

import json
import os
import random
import time

import pytest

from repro.api import (
    EXECUTOR_NAMES,
    ProcessExecutor,
    SerialExecutor,
    Session,
    ThreadExecutor,
    Workload,
    list_backends,
    register_backend,
    shard_workloads,
    unregister_backend,
)
from repro.api.cli import main as cli_main
from repro.api.executor import resolve_worker_count, validate_max_workers

SMALL = dict(iterations=4, window_sides=(1, 2, 3), max_depth=2,
             max_cones_per_depth=3)


def mixed_batch():
    """blur/jacobi/chambolle workloads, including shared-key frame pairs."""
    return [
        Workload.from_algorithm("blur", **SMALL),
        Workload.from_algorithm("blur", frame_width=640, frame_height=480,
                                **SMALL),
        Workload.from_algorithm("jacobi", **SMALL),
        Workload.from_algorithm("chamb", **SMALL),
        Workload.from_algorithm("chamb", frame_width=640, frame_height=480,
                                **SMALL),
    ]


def serialized(result):
    return json.dumps(result.to_dict(), sort_keys=True)


class TestWorkerCountValidation:
    """ISSUE 3 satellite: bad ``max_workers`` must fail loudly, not be
    silently replaced by an ``os.cpu_count()`` default."""

    @pytest.mark.parametrize("bad", [0, -1, -8, 1.5, True, "4"])
    def test_run_many_rejects_non_positive_worker_counts(self, bad):
        with pytest.raises(ValueError, match="max_workers"):
            Session().run_many([Workload.from_algorithm("blur", **SMALL)],
                               max_workers=bad)

    @pytest.mark.parametrize("name", EXECUTOR_NAMES)
    def test_every_builtin_strategy_rejects_zero_workers(self, name):
        with pytest.raises(ValueError, match="max_workers"):
            Session().run_many([Workload.from_algorithm("blur", **SMALL)],
                               max_workers=0, executor=name)

    def test_validation_happens_before_any_workload_runs(self):
        session = Session()
        with pytest.raises(ValueError):
            session.run_many(mixed_batch(), max_workers=-2)
        assert session.stats.workloads_run == 0

    def test_none_means_auto_sizing(self):
        assert validate_max_workers(None) is None
        assert resolve_worker_count(None, 3) >= 1
        assert resolve_worker_count(8, 3) == 3  # capped to the batch


class TestDeterministicSharding:
    def test_shards_partition_the_batch(self):
        batch = mixed_batch()
        shards = shard_workloads(batch, 3)
        indices = sorted(i for shard in shards for i in shard)
        assert indices == list(range(len(batch)))

    def test_shared_keys_stay_in_one_shard(self):
        batch = mixed_batch()
        shards = shard_workloads(batch, len(batch))
        shard_of = {i: n for n, shard in enumerate(shards) for i in shard}
        keys = [w.characterization_key() for w in batch]
        for a in range(len(batch)):
            for b in range(a + 1, len(batch)):
                if keys[a] == keys[b]:
                    assert shard_of[a] == shard_of[b]

    def test_assignment_ignores_submission_order(self):
        """The key -> shard mapping must be a function of the key multiset
        only, so shuffled batches schedule identically."""
        batch = mixed_batch()
        ordering = list(range(len(batch)))
        reference = None
        for seed in range(5):
            random.Random(seed).shuffle(ordering)
            shuffled = [batch[i] for i in ordering]
            shards = shard_workloads(shuffled, 2)
            key_to_shard = {
                repr(shuffled[i].characterization_key()): n
                for n, shard in enumerate(shards) for i in shard}
            if reference is None:
                reference = key_to_shard
            assert key_to_shard == reference

    def test_shard_count_validated(self):
        with pytest.raises(ValueError, match="shard_count"):
            shard_workloads(mixed_batch(), 0)


class TestExecutorRegistry:
    def test_builtins_are_registered(self):
        assert list_backends("executor") == {
            "executor": sorted(EXECUTOR_NAMES)}

    def test_out_of_tree_strategy_plugs_in(self):
        """A custom executor registered under the ``executor`` kind runs
        end-to-end through ``Session.run_many``."""
        calls = []

        class RecordingExecutor(SerialExecutor):
            name = "recording"

            def run_batch(self, session, workloads, max_workers=None):
                calls.append(len(workloads))
                return super().run_batch(session, workloads,
                                         max_workers=max_workers)

        register_backend("executor", "recording", RecordingExecutor)
        try:
            results = Session().run_many(
                [Workload.from_algorithm("blur", **SMALL)],
                executor="recording")
            assert calls == [1] and len(results) == 1
        finally:
            unregister_backend("executor", "recording")

    def test_unknown_strategy_fails_cleanly(self):
        from repro.api import BackendError

        with pytest.raises(BackendError, match="unknown executor"):
            Session().run_many([Workload.from_algorithm("blur", **SMALL)],
                               executor="not-a-strategy")

    def test_strategy_instance_accepted_directly(self):
        results = Session().run_many(
            [Workload.from_algorithm("blur", **SMALL)],
            executor=ThreadExecutor())
        assert len(results) == 1 and results[0].pareto


@pytest.mark.par
@pytest.mark.slow
class TestCrossExecutorDeterminism:
    """ISSUE 3 satellite: byte-identical ``to_dict()`` results for serial,
    threads, and processes — including under shuffled submission order."""

    def test_all_strategies_agree_byte_for_byte(self):
        batch = mixed_batch()
        baseline = [serialized(r)
                    for r in Session().run_many(batch, executor="serial")]
        for name in ("threads", "processes"):
            results = Session().run_many(batch, max_workers=4, executor=name)
            assert [serialized(r) for r in results] == baseline, name

    def test_shuffled_submission_changes_nothing_per_workload(self):
        batch = mixed_batch()
        baseline = {
            workload: serialized(result)
            for workload, result in zip(
                batch, Session().run_many(batch, executor="serial"))}
        ordering = list(range(len(batch)))
        random.Random(42).shuffle(ordering)
        shuffled = [batch[i] for i in ordering]
        for name in ("threads", "processes"):
            results = Session().run_many(shuffled, max_workers=3,
                                         executor=name)
            for workload, result in zip(shuffled, results):
                assert serialized(result) == baseline[workload], name

    def test_worker_count_does_not_change_results(self):
        batch = mixed_batch()
        baseline = [serialized(r)
                    for r in Session().run_many(batch, executor="serial")]
        for workers in (1, 2, 5):
            results = Session().run_many(batch, max_workers=workers,
                                         executor="processes")
            assert [serialized(r) for r in results] == baseline, workers


@pytest.mark.par
@pytest.mark.slow
class TestProcessExecutor:
    def test_cold_run_merges_stats_and_store_writes(self, tmp_path):
        store_dir = str(tmp_path / "store")
        session = Session(store=store_dir)
        results = session.run_many(mixed_batch(), max_workers=4,
                                   executor="processes")
        assert len(results) == 5 and all(r.pareto for r in results)
        stats = session.stats
        assert stats.workloads_run == 5
        assert stats.synthesis_runs > 0        # folded in from the workers
        assert stats.store_writes > 0          # workers share the store

    def test_warm_rerun_shares_the_serial_code_path(self, tmp_path):
        """A store-warm batch must be answered in-process (zero forks, zero
        synthesis) — cold parallel runs and warm reruns share one path."""
        store_dir = str(tmp_path / "store")
        batch = mixed_batch()
        cold = Session(store=store_dir)
        cold_results = cold.run_many(batch, max_workers=4,
                                     executor="processes")

        warm = Session(store=store_dir)
        warm_results = warm.run_many(batch, max_workers=4,
                                     executor="processes")
        assert warm.stats.synthesis_runs == 0
        assert warm.stats.store_disk_hits == len(batch)
        assert ([serialized(r) for r in warm_results]
                == [serialized(r) for r in cold_results])

    def test_results_promoted_into_parent_memory(self):
        """Without a store, a later ``run()`` of the same workload in the
        parent session is a memory hit, not a recomputation."""
        batch = mixed_batch()
        session = Session()
        session.run_many(batch, max_workers=4, executor="processes")
        runs = session.stats.synthesis_runs
        events = []
        session.on_event(events.append)
        rerun = session.run(batch[0])
        assert rerun.pareto
        assert session.stats.synthesis_runs == runs
        assert any(event.kind == "cache-hit"
                   and "restored result" in event.detail
                   for event in events)

    def test_batch_events_are_emitted(self):
        events = []
        session = Session(on_event=events.append)
        session.run_many(mixed_batch(), max_workers=4, executor="processes")
        finished = [e for e in events if e.kind == "workload-finished"]
        assert len(finished) == 5
        assert all(e.elapsed_s is not None and e.elapsed_s >= 0
                   for e in finished)

    def test_worker_failure_propagates_to_the_parent(self):
        """A failing shard must re-raise like serial/threads do — but only
        after the batch completes, with the failure counted and announced
        and the surviving shards' statistics preserved."""
        bad = Workload.from_algorithm("blur",
                                      calibration_windows_per_depth=1,
                                      **SMALL)
        good = Workload.from_algorithm("jacobi", **SMALL)
        events = []
        session = Session(on_event=events.append)
        with pytest.raises(ValueError, match="calibration_windows_per_depth"):
            session.run_many([bad, good], max_workers=2,
                             executor="processes")
        stats = session.stats
        assert stats.workloads_failed == 1
        assert stats.workloads_run == 1       # the good shard still counted
        assert stats.synthesis_runs > 0       # ... and kept its accounting
        failed = [e for e in events if e.kind == "workload-failed"]
        assert len(failed) == 1
        assert "calibration_windows_per_depth" in failed[0].detail

    def test_explicit_start_method_is_honored(self):
        executor = ProcessExecutor(start_method="fork")
        results = Session().run_many(
            [Workload.from_algorithm("blur", **SMALL),
             Workload.from_algorithm("jacobi", **SMALL)],
            max_workers=2, executor=executor)
        assert len(results) == 2 and all(r.pareto for r in results)


class TestInProcessWarmPath:
    """ISSUE 4 satellite: the warm/cold split consults the *in-memory*
    caches — full results and the characterization-key explorer cache —
    not just the persistent store, so repeated in-session batches never pay
    pool startup.  (Fast: nothing here is allowed to fork, which is the
    point — so no ``par`` marker.)"""

    @staticmethod
    def _forbid_forking(monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("ProcessPoolExecutor must not be created "
                                 "for an in-session-warm batch")
        monkeypatch.setattr("repro.api.executor.ProcessPoolExecutor", boom)

    def test_rerun_of_a_computed_batch_forks_nothing(self, monkeypatch):
        batch = [Workload.from_algorithm("blur", **SMALL),
                 Workload.from_algorithm("jacobi", **SMALL)]
        session = Session()
        first = session.run_many(batch, executor="serial")
        self._forbid_forking(monkeypatch)
        rerun = session.run_many(batch, max_workers=4, executor="processes")
        assert ([serialized(r) for r in rerun]
                == [serialized(r) for r in first])

    def test_new_frames_over_characterized_kernels_fork_nothing(
            self, monkeypatch):
        """A follow-up batch over new frame sizes reuses the in-memory cone
        characterizations; forking would recompute them from scratch in the
        workers, so it must stay in-process."""
        batch = [Workload.from_algorithm("blur", **SMALL),
                 Workload.from_algorithm("jacobi", **SMALL)]
        session = Session()
        session.run_many(batch, executor="serial")
        runs_before = session.stats.synthesis_runs
        self._forbid_forking(monkeypatch)
        shifted = [workload.replace(frame_width=200, frame_height=150)
                   for workload in batch]
        results = session.run_many(shifted, max_workers=4,
                                   executor="processes")
        assert all(result.pareto for result in results)
        # shared characterizations: the new frames paid zero synthesis
        assert session.stats.synthesis_runs == runs_before

    def test_cold_keys_still_prefer_forking(self):
        """The in-memory probe must not claim workloads the session has
        never seen (their keys have no explorer yet)."""
        session = Session()
        cold = Workload.from_algorithm("blur", **SMALL)
        assert not session._prefers_in_process(cold)
        session.run(cold)
        assert session._prefers_in_process(cold)
        # same characterization key, different frame: explorer-cache warm
        assert session._prefers_in_process(
            cold.replace(frame_width=200, frame_height=150))
        # different kernel: genuinely cold
        assert not session._prefers_in_process(
            Workload.from_algorithm("jacobi", **SMALL))

    def test_iteration_count_needing_new_depth_families_stays_cold(self):
        """The probe checks family coverage, not mere explorer existence: an
        iteration count that introduces uncharacterized depth families must
        still fork (its synthesis genuinely parallelizes)."""
        shallow = Workload.from_algorithm(
            "blur", iterations=1, window_sides=(1, 2, 3), max_depth=2,
            max_cones_per_depth=3)
        session = Session()
        session.run(shallow)  # characterizes the depth-1 family only
        assert session._prefers_in_process(
            shallow.replace(frame_width=200, frame_height=150))
        deeper = shallow.replace(iterations=4)  # adds the depth-2 family
        assert not session._prefers_in_process(deeper)
        session.run(deeper)
        assert session._prefers_in_process(deeper.replace(frame_width=64,
                                                          frame_height=64))


@pytest.mark.par
@pytest.mark.slow
class TestScalingSpeedup:
    def test_processes_beat_serial_on_a_multicore_runner(self):
        """ISSUE 3 acceptance: >= 2x over serial on a cold 4-kernel batch
        with 4 workers (the full-scale twin is recorded by scripts/bench.py
        into BENCH_<date>.json).  Meaningless without real cores — the
        strategy trades fork overhead for parallelism — so skipped below 4.
        """
        if (os.cpu_count() or 1) < 4:
            pytest.skip("needs >= 4 cores to demonstrate process scaling")
        knobs = dict(iterations=8, window_sides=(1, 2, 3, 4, 5, 6),
                     max_depth=4, max_cones_per_depth=8,
                     synthesize_all=True)
        batch = [Workload.from_algorithm(name, **knobs)
                 for name in ("blur", "chamb", "jacobi", "heat")]

        started = time.perf_counter()
        serial = Session().run_many(batch, executor="serial")
        serial_wall = time.perf_counter() - started

        started = time.perf_counter()
        parallel = Session().run_many(batch, max_workers=4,
                                      executor="processes")
        parallel_wall = time.perf_counter() - started

        assert ([serialized(r) for r in parallel]
                == [serialized(r) for r in serial])
        assert serial_wall / parallel_wall >= 2.0, (
            f"processes {parallel_wall:.2f}s vs serial {serial_wall:.2f}s")


class TestCliExecutorFlags:
    def test_sweep_accepts_serial_executor(self, capsys):
        assert cli_main(["sweep", "--algorithms", "blur", "--frames",
                         "128x96", "--iterations", "4", "--windows", "1,2,3",
                         "--max-depth", "2", "--executor", "serial",
                         "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workloads"]

    def test_explore_accepts_executor_and_jobs(self, capsys):
        assert cli_main(["explore", "blur", "--frame", "128x96",
                         "--iterations", "4", "--windows", "1,2,3",
                         "--max-depth", "2", "--quiet", "--executor",
                         "serial", "--jobs", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exploration"]["pareto"]

    def test_unknown_executor_name_exits_2(self, capsys):
        assert cli_main(["sweep", "--algorithms", "blur", "--frames",
                         "128x96", "--iterations", "4", "--windows", "1,2,3",
                         "--max-depth", "2", "--executor", "warp-drive",
                         "--json"]) == 2
        assert "unknown executor" in capsys.readouterr().err

    def test_invalid_jobs_exits_2(self, capsys):
        assert cli_main(["sweep", "--algorithms", "blur", "--frames",
                         "128x96", "--iterations", "4", "--windows", "1,2,3",
                         "--max-depth", "2", "--jobs", "0", "--json"]) == 2
        assert "max_workers" in capsys.readouterr().err

    @pytest.mark.par
    @pytest.mark.slow
    def test_sweep_processes_executor_end_to_end(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        arguments = ["sweep", "--algorithms", "blur,jacobi", "--frames",
                     "128x96", "--iterations", "4", "--windows", "1,2,3",
                     "--max-depth", "2", "--executor", "processes", "--jobs",
                     "2", "--store", store_dir, "--json"]
        assert cli_main(arguments) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["session"]["synthesis_runs"] > 0
        assert cli_main(arguments) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["session"]["synthesis_runs"] == 0
        assert warm["workloads"] == cold["workloads"]
