"""Tests for the persistent artifact store (ISSUE 2 tentpole).

The acceptance-critical property: a second session (or CLI invocation)
pointed at the same store directory completes the same workload batch with
zero synthesizer invocations, observable via the ``SessionStats`` disk-hit
counters.  The robustness satellites live here too: corrupted/truncated
artifacts, schema-version mismatches, and concurrent writers must all fall
back to recomputation, never crash.
"""

import json
import os

import pytest

from repro.api import ArtifactStore, Session, Workload
from repro.api import store as store_module
from repro.api.cli import main as cli_main

SMALL = dict(iterations=4, window_sides=(1, 2, 3), max_depth=2,
             max_cones_per_depth=3)


def blur(**overrides):
    keywords = dict(SMALL)
    keywords.update(overrides)
    return Workload.from_algorithm("blur", **keywords)


@pytest.fixture()
def store_dir(tmp_path):
    return str(tmp_path / "store")


class TestWarmResume:
    def test_second_session_runs_zero_synthesis(self, store_dir):
        """ISSUE 2 acceptance: same store dir, same batch, zero synthesis."""
        workloads = [blur(),
                     blur(frame_width=640, frame_height=480),
                     Workload.from_algorithm("jacobi", **SMALL)]
        cold = Session(store=store_dir)
        cold_results = cold.run_many(workloads)
        assert cold.stats.synthesis_runs > 0
        assert cold.stats.store_writes > 0

        warm = Session(store=store_dir)
        warm_results = warm.run_many(workloads)
        stats = warm.stats
        assert stats.synthesis_runs == 0
        assert stats.store_disk_hits == len(workloads)
        assert stats.store_disk_misses == 0
        assert stats.workloads_run == len(workloads)
        for cold_result, warm_result in zip(cold_results, warm_results):
            assert warm_result.pareto == cold_result.pareto

    def test_characterizations_resume_without_results(self, store_dir):
        """Dropping only the result artifacts still avoids all synthesis:
        the characterization families carry the expensive state."""
        workload = blur()
        Session(store=store_dir).run(workload)
        removed = ArtifactStore(store_dir).clear("result")
        assert removed == 1

        warm = Session(store=store_dir)
        result = warm.run(workload)
        assert result.pareto
        assert warm.stats.synthesis_runs == 0
        assert warm.stats.store_disk_hits > 0

    def test_warm_result_equals_cold_result(self, store_dir):
        workload = blur()
        cold = Session(store=store_dir).run(workload)
        warm = Session(store=store_dir).run(workload)
        assert warm.pareto == cold.pareto
        assert warm.exploration == cold.exploration

    def test_storeless_session_touches_no_disk_counters(self):
        session = Session()
        session.run(blur())
        stats = session.stats
        assert stats.store_disk_hits == 0
        assert stats.store_disk_misses == 0
        assert stats.store_writes == 0
        assert session.store is None

    def test_warm_hit_emits_cache_event(self, store_dir):
        workload = blur()
        Session(store=store_dir).run(workload)
        events = []
        session = Session(on_event=events.append, store=store_dir)
        session.run(workload)
        hits = [event for event in events if event.kind == "cache-hit"]
        assert hits and "persistent store" in hits[0].detail

    def test_memory_cache_stays_in_front_of_the_disk(self, store_dir):
        """A repeat run() in one session is an in-memory pipeline hit: no
        second disk read, no store_disk_hits inflation, no re-write."""
        session = Session(store=store_dir)
        workload = blur()
        first = session.run(workload)
        hits = session.stats.store_disk_hits
        writes = session.stats.store_writes
        second = session.run(workload)
        assert second.pareto == first.pareto
        assert session.stats.store_disk_hits == hits
        assert session.stats.store_writes == writes
        assert session.stats.characterization_cache_hits == 1

    def test_restored_result_is_promoted_to_memory(self, store_dir):
        """Repeat runs of a disk-restored workload hit memory, not disk."""
        workload = blur()
        Session(store=store_dir).run(workload)
        warm = Session(store=store_dir)
        first = warm.run(workload)
        second = warm.run(workload)
        third = warm.run(workload)
        assert warm.stats.store_disk_hits == 1
        assert first.pareto == second.pareto == third.pareto
        # each caller got an isolated wrapper over the shared entries
        second.design_points.clear()
        assert warm.run(workload).design_points

    def test_replacing_a_backend_invalidates_stored_artifacts(
            self, store_dir):
        """Swapping the implementation behind a backend name must recompute,
        not serve the old implementation's artifacts."""
        from repro.api import register_backend
        from repro.estimation import RegisterAreaModel

        workload = blur()
        Session(store=store_dir).run(workload)

        class SameNameModel(RegisterAreaModel):
            pass

        register_backend("area", "register-model", SameNameModel,
                         replace=True)
        try:
            swapped = Session(store=store_dir)
            swapped.run(workload)
            assert swapped.stats.synthesis_runs > 0
            assert swapped.stats.store_disk_hits == 0
        finally:
            register_backend("area", "register-model", RegisterAreaModel,
                             replace=True)
        # the original implementation still finds its own artifacts
        warm = Session(store=store_dir)
        warm.run(workload)
        assert warm.stats.synthesis_runs == 0

    def test_memory_served_result_not_filed_under_new_backend(
            self, store_dir):
        """A backend hot-swapped mid-session must not get the OLD
        implementation's memory-cached result written under ITS key."""
        from repro.api import register_backend
        from repro.estimation import RegisterAreaModel

        workload = blur()
        session = Session(store=store_dir)
        session.run(workload)

        class SwappedIn(RegisterAreaModel):
            pass

        register_backend("area", "register-model", SwappedIn, replace=True)
        try:
            session.run(workload)  # memory hit computed by the OLD backend
            # a fresh process with the new backend must MISS and recompute,
            # not be served the old implementation's numbers
            fresh = Session(store=store_dir)
            fresh.run(workload)
            assert fresh.stats.synthesis_runs > 0
        finally:
            register_backend("area", "register-model", RegisterAreaModel,
                             replace=True)

    def test_result_key_tracks_kernel_content(self, store_dir):
        """The result artifact is keyed by kernel fingerprint, not just the
        algorithm's registry name, so editing an algorithm definition can
        never serve a stale stored result."""
        workload = blur()
        key = Session._result_store_key(workload)
        assert workload.kernel_fingerprint in key
        # equal workloads from different construction paths share the key
        assert key == Session._result_store_key(blur())

    def test_generate_vhdl_reuses_stored_characterizations(self, store_dir):
        workload = blur()
        Session(store=store_dir).run(workload)
        warm = Session(store=store_dir)
        files = warm.generate_vhdl(workload)
        assert files
        assert warm.stats.synthesis_runs == 0

    def test_result_persisted_after_codegen_first_session(self, store_dir):
        """pareto first running as a codegen prerequisite must not leave the
        result artifact unwritten when run() later serves it from memory."""
        workload = blur()
        session = Session(store=store_dir)
        session.generate_vhdl(workload)
        session.run(workload)
        assert ArtifactStore(store_dir).describe()[
            "kinds"]["result"]["artifacts"] == 1
        fresh = Session(store=store_dir)
        fresh.run(workload)
        assert fresh.stats.store_disk_hits == 1
        assert fresh.stats.synthesis_runs == 0

    def test_unserializable_payload_degrades_to_noop(self, store_dir):
        """A payload json cannot encode (third-party backend leaking exotic
        scalars) must lose only the cache write, not the workload."""
        store = ArtifactStore(store_dir)
        assert store.put("result", "weird", {"x": object()}) is None
        assert store.writes == 0
        assert store.get("result", "weird") is None


class TestRobustness:
    def test_corrupted_artifacts_fall_back_to_recompute(self, store_dir):
        workload = blur()
        Session(store=store_dir).run(workload)
        store = ArtifactStore(store_dir)
        paths = store.artifact_paths()
        assert paths
        for path in paths:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("{not json at all")

        session = Session(store=store_dir)
        result = session.run(workload)
        assert result.pareto
        assert session.stats.synthesis_runs > 0
        assert session.stats.store_disk_hits == 0
        # the poisoned files were replaced by fresh artifacts
        second = Session(store=store_dir)
        second.run(workload)
        assert second.stats.synthesis_runs == 0

    def test_truncated_artifacts_fall_back_to_recompute(self, store_dir):
        workload = blur()
        Session(store=store_dir).run(workload)
        for path in ArtifactStore(store_dir).artifact_paths():
            with open(path, "r+", encoding="utf-8") as handle:
                handle.truncate(os.path.getsize(path) // 2)
        session = Session(store=store_dir)
        assert session.run(workload).pareto
        assert session.stats.synthesis_runs > 0

    def test_schema_version_mismatch_recomputes(self, store_dir, monkeypatch):
        workload = blur()
        Session(store=store_dir).run(workload)
        # rewrite every artifact as a future schema version
        store = ArtifactStore(store_dir)
        for path in store.artifact_paths():
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
            envelope["schema"] = store_module.SCHEMA_VERSION + 1
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle)

        session = Session(store=store_dir)
        result = session.run(workload)
        assert result.pareto
        assert session.stats.synthesis_runs > 0
        assert session.stats.store_disk_hits == 0

    def test_key_collision_is_detected(self, store_dir):
        store = ArtifactStore(store_dir)
        store.put("result", "key-a", {"value": 1})
        # simulate a (absurdly unlikely) digest collision by renaming the
        # artifact onto another key's address
        victim = store.path_for("result", "key-b")
        os.replace(store.path_for("result", "key-a"), victim)
        assert store.get("result", "key-b") is None
        assert store.corrupt == 1

    def test_unknown_backend_fails_with_full_accounting(self, store_dir):
        """An unregistered backend name on a store-backed session is
        counted and announced exactly like any other workload failure."""
        from repro.api import BackendError

        events = []
        session = Session(on_event=events.append, store=store_dir)
        bad = blur(synthesizer="not-a-backend")
        with pytest.raises(BackendError, match="unknown synthesizer"):
            session.run(bad)
        assert session.stats.workloads_failed == 1
        assert any(event.kind == "workload-failed" for event in events)

    def test_unwritable_store_degrades_to_noop(self, store_dir):
        workload = blur()
        os.makedirs(store_dir)
        os.chmod(store_dir, 0o500)  # read+execute, no write
        try:
            if os.access(store_dir, os.W_OK):
                pytest.skip("running as privileged user; chmod not effective")
            session = Session(store=store_dir)
            result = session.run(workload)
            assert result.pareto
            assert session.stats.store_writes == 0
        finally:
            os.chmod(store_dir, 0o700)

    def test_concurrent_run_many_writers_share_one_store(self, store_dir):
        workloads = [
            Workload.from_algorithm(name, frame_width=width, **SMALL)
            for name in ("blur", "jacobi", "heat", "erode")
            for width in (128, 256)
        ]
        cold = Session(store=store_dir)
        results = cold.run_many(workloads, max_workers=4)
        assert len(results) == len(workloads)
        # every artifact on disk parses cleanly after the concurrent batch
        store = ArtifactStore(store_dir)
        for path in store.artifact_paths():
            with open(path, "r", encoding="utf-8") as handle:
                assert json.load(handle)["schema"] == \
                    store_module.SCHEMA_VERSION
        warm = Session(store=store_dir)
        warm.run_many(workloads, max_workers=4)
        assert warm.stats.synthesis_runs == 0
        assert warm.stats.store_disk_hits == len(workloads)

    def test_two_sessions_sharing_one_store_object(self, store_dir):
        store = ArtifactStore(store_dir)
        first = Session(store=store)
        second = Session(store=store)
        first.run(blur())
        second.run(blur())
        assert second.stats.synthesis_runs == 0
        assert first.store is store and second.store is store


class TestStoreMaintenance:
    def test_describe_counts_and_bytes(self, store_dir):
        Session(store=store_dir).run(blur())
        description = ArtifactStore(store_dir).describe()
        assert description["artifacts"] > 0
        assert description["bytes"] > 0
        assert description["kinds"]["characterization"]["artifacts"] > 0
        assert description["kinds"]["result"]["artifacts"] == 1

    def test_clear_removes_everything(self, store_dir):
        Session(store=store_dir).run(blur())
        store = ArtifactStore(store_dir)
        assert store.clear() > 0
        assert store.describe()["artifacts"] == 0

    def test_clear_reclaims_other_schema_versions(self, store_dir):
        Session(store=store_dir).run(blur())
        legacy_dir = os.path.join(store_dir, "v0", "characterization")
        os.makedirs(legacy_dir)
        with open(os.path.join(legacy_dir, "old.json"), "w",
                  encoding="utf-8") as handle:
            handle.write("{}")
        store = ArtifactStore(store_dir)
        description = store.describe()
        assert description["stale_artifacts"] == 1
        removed = store.clear()
        assert not os.path.exists(os.path.join(legacy_dir, "old.json"))
        assert removed == description["artifacts"] + 1
        assert store.describe()["stale_artifacts"] == 0

    def test_clear_reclaims_orphaned_tmp_files(self, store_dir):
        """A writer killed between mkstemp and os.replace leaks a .tmp file;
        the maintenance sweep must see and reclaim it."""
        Session(store=store_dir).run(blur())
        store = ArtifactStore(store_dir)
        orphan = os.path.join(store_dir, f"v{store_module.SCHEMA_VERSION}",
                              "result", "tmpdead42.tmp")
        with open(orphan, "w", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "kind": "result"')  # cut mid-write
        assert store.describe()["stale_artifacts"] == 1
        store.clear()
        assert not os.path.exists(orphan)
        assert store.describe()["stale_artifacts"] == 0

    def test_export_round_trips_payloads(self, store_dir):
        Session(store=store_dir).run(blur())
        payload = ArtifactStore(store_dir).export_payload()
        assert payload["schema"] == store_module.SCHEMA_VERSION
        assert payload["artifacts"]
        kinds = {entry["kind"] for entry in payload["artifacts"]}
        assert {"characterization", "result"} <= kinds

    def test_default_store_path_honors_env(self, monkeypatch):
        monkeypatch.setenv(store_module.CACHE_ENV_VAR, "/tmp/elsewhere")
        assert store_module.default_store_path() == "/tmp/elsewhere"
        monkeypatch.delenv(store_module.CACHE_ENV_VAR)
        assert store_module.default_store_path().endswith(
            os.path.join(".cache", "repro"))


class TestCliStore:
    def test_cli_sweep_reruns_with_zero_synthesis(self, store_dir, tmp_path,
                                                  capsys):
        arguments = ["sweep", "--algorithms", "blur", "--frames", "128x96",
                     "--iterations", "4", "--windows", "1,2,3",
                     "--max-depth", "2", "--store", store_dir, "--json"]
        assert cli_main(arguments) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["session"]["synthesis_runs"] > 0

        assert cli_main(arguments) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["session"]["synthesis_runs"] == 0
        assert warm["session"]["store_disk_hits"] > 0
        assert warm["workloads"] == cold["workloads"]

    def test_cli_cache_stats_clear_export(self, store_dir, capsys):
        assert cli_main(["explore", "blur", "--frame", "128x96",
                         "--iterations", "4", "--windows", "1,2,3",
                         "--max-depth", "2", "--quiet",
                         "--store", store_dir]) == 0
        capsys.readouterr()

        assert cli_main(["cache", "stats", "--store", store_dir,
                         "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["artifacts"] > 0

        assert cli_main(["cache", "export", "--store", store_dir]) == 0
        exported = json.loads(capsys.readouterr().out)
        assert exported["artifacts"]

        assert cli_main(["cache", "clear", "--store", store_dir]) == 0
        assert "removed" in capsys.readouterr().out
        assert ArtifactStore(store_dir).describe()["artifacts"] == 0
