"""Tests for session-level caching, batching, and events.

The headline property (satellite of ISSUE 1, acceptance criterion): batching
workloads through one session must not run the synthesizer more often than
the number of unique ``(kernel, window, depth)`` cone shapes.
"""

import pytest

from repro.api import Session, Workload
from repro.dse.constraints import DseConstraints


SMALL = dict(iterations=4, window_sides=(1, 2, 3), max_depth=2,
             max_cones_per_depth=3)


def unique_shape_count(session):
    """Distinct (kernel, window, depth) shapes characterized by a session."""
    total = 0
    for key in session.cached_keys:
        explorer = session._explorers[key]
        for per_window, _ in explorer._family_cache.values():
            total += len(per_window)
    return total


class TestCharacterizationSharing:
    def test_same_kernel_two_frame_sizes_characterizes_once(self):
        session = Session()
        small = Workload.from_algorithm("blur", frame_width=640,
                                        frame_height=480, **SMALL)
        large = Workload.from_algorithm("blur", frame_width=1024,
                                        frame_height=768, **SMALL)
        first = session.run(small)
        runs_after_first = session.stats.synthesis_runs
        second = session.run(large)
        assert session.stats.synthesis_runs == runs_after_first
        assert session.stats.characterization_cache_hits >= 1
        assert first.exploration.frame_width == 640
        assert second.exploration.frame_width == 1024

    def test_batch_never_exceeds_unique_cone_shapes(self):
        """ISSUE 1 acceptance: >= 3 algorithms x 2 frame sizes."""
        session = Session()
        workloads = [
            Workload.from_algorithm(name, frame_width=width,
                                    frame_height=height, **SMALL)
            for name in ("blur", "jacobi", "heat")
            for width, height in ((640, 480), (1024, 768))
        ]
        results = session.run_many(workloads)
        assert len(results) == 6
        stats = session.stats
        assert stats.workloads_run == 6
        assert stats.synthesis_runs <= unique_shape_count(session)
        # 3 unique kernels, each hit once more for its second frame size
        assert stats.characterization_cache_misses == 3
        assert stats.characterization_cache_hits >= 3

    def test_port_width_sweep_shares_characterizations(self):
        """onchip_port_elements_per_cycle only shapes throughput estimates;
        sweeping it must reuse all synthesis work and change performance."""
        session = Session()
        narrow = Workload.from_algorithm("blur", **SMALL)
        wide = narrow.replace(onchip_port_elements_per_cycle=64)
        first = session.run(narrow)
        runs = session.stats.synthesis_runs
        second = session.run(wide)
        assert session.stats.synthesis_runs == runs
        assert session.stats.characterization_cache_hits == 1
        fps_narrow = first.best_fitting_point().frames_per_second
        fps_wide = second.best_fitting_point().frames_per_second
        assert fps_wide > fps_narrow

    def test_reentrant_event_callback_does_not_deadlock(self):
        """A callback re-entering the session from a characterize-stage or
        cache-hit event must not deadlock on the key lock."""
        session = Session()
        workload = Workload.from_algorithm("blur", **SMALL)
        reentered = []

        def callback(event):
            if event.kind == "workload-finished" or event.kind == "cache-hit":
                reentered.append(session.generate_vhdl(workload))

        session.on_event(callback)
        session.run(workload)
        session.run(workload)  # second run emits a (deferred) cache-hit
        assert reentered and all(reentered)

    def test_iteration_counts_share_depth_family_characterizations(self):
        """Changing only `iterations` re-uses every already-characterized
        (depth, window family) — no extra synthesis, honest accounting."""
        session = Session()
        ten = Workload.from_algorithm("blur", iterations=4, **
                                      {k: v for k, v in SMALL.items()
                                       if k != "iterations"})
        eight = ten.replace(iterations=3)
        first = session.run(ten)
        runs_after_first = session.stats.synthesis_runs
        second = session.run(eight)
        assert session.stats.synthesis_runs == runs_after_first
        assert second.exploration.synthesis_runs <= runs_after_first
        assert first.exploration.total_iterations == 4
        assert second.exploration.total_iterations == 3

    def test_evict_releases_pipelines_but_keeps_accounting(self):
        session = Session()
        workload = Workload.from_algorithm("blur", **SMALL)
        session.run(workload)
        runs = session.stats.synthesis_runs
        assert runs > 0
        session.evict(workload)          # drop one pipeline
        session.evict()                  # drop everything
        assert session.cached_keys == []
        assert session.stats.synthesis_runs == runs
        # the session still works after a full eviction
        result = session.run(workload)
        assert result.pareto

    def test_partial_reuse_across_iteration_counts_counts_as_miss(self):
        """A deeper run that only partially reuses cached depth families
        must not be announced as a full characterization cache hit."""
        session = Session()
        shallow = Workload.from_algorithm("blur", iterations=2,
                                          window_sides=(1, 2, 3), max_depth=5)
        session.run(shallow)
        runs_before = session.stats.synthesis_runs
        session.run(shallow.replace(iterations=10))  # needs depths 3..5 too
        stats = session.stats
        assert stats.synthesis_runs > runs_before
        assert stats.characterization_cache_hits == 0
        assert stats.characterization_cache_misses == 2

    def test_mutating_an_early_stage_artifact_does_not_corrupt_cache(self):
        session = Session()
        workload = Workload.from_algorithm("blur", **SMALL)
        exploration = session.run(workload, until="explore")
        count = len(exploration.design_points)
        exploration.design_points.clear()
        result = session.run(workload)
        assert len(result.design_points) == count

    def test_run_until_early_stage_skips_characterization(self):
        session = Session()
        workload = Workload.from_algorithm("blur", **SMALL)
        analysis = session.run(workload, until="analyze")
        assert analysis["invariance"].is_isl
        stats = session.stats
        assert stats.synthesis_runs == 0
        assert stats.characterization_cache_misses == 0

    def test_default_session_is_process_wide(self):
        from repro.api import default_session
        assert default_session() is default_session()

    def test_two_kernels_on_one_device_do_not_share(self):
        session = Session()
        blur = Workload.from_algorithm("blur", **SMALL)
        jacobi = Workload.from_algorithm("jacobi", **SMALL)
        session.run_many([blur, jacobi])
        assert len(session.cached_keys) == 2

    def test_stats_can_be_polled_during_a_threaded_batch(self):
        """Reading stats (e.g. from an event callback) must not race the
        characterization of in-flight workloads."""
        session = Session()
        session.on_event(lambda event: session.stats)
        workloads = [
            Workload.from_algorithm(name, frame_width=width, **SMALL)
            for name in ("blur", "jacobi", "heat", "erode")
            for width in (128, 256)
        ]
        results = session.run_many(workloads, max_workers=4)
        assert len(results) == 8
        assert session.stats.synthesis_runs > 0

    def test_sequential_and_threaded_batches_agree(self):
        workloads = [
            Workload.from_algorithm("blur", **SMALL),
            Workload.from_algorithm("blur", frame_width=640,
                                    frame_height=480, **SMALL),
            Workload.from_algorithm("jacobi", **SMALL),
        ]
        sequential = Session().run_many(workloads, max_workers=1)
        threaded = Session().run_many(workloads, max_workers=4)
        for a, b in zip(sequential, threaded):
            assert a.pareto == b.pareto
            assert a.exploration.synthesis_runs == b.exploration.synthesis_runs

    def test_explorer_for_returns_cached_instance(self):
        session = Session()
        workload = Workload.from_algorithm("blur", **SMALL)
        assert session.explorer_for(workload) is session.explorer_for(workload)

    def test_pipeline_is_cached_so_codegen_reuses_run_artifacts(self):
        session = Session()
        workload = Workload.from_algorithm("blur", **SMALL)
        session.run(workload)
        pipeline = session.pipeline(workload)
        assert pipeline.has_run("explore")
        explore_time_before = pipeline.timings["explore"]
        files = session.generate_vhdl(workload)
        assert files
        # codegen reused the cached pipeline; explore did not run again
        assert session.pipeline(workload) is pipeline
        assert pipeline.timings["explore"] == explore_time_before

    def test_concurrent_codegen_does_not_duplicate_synthesis(self):
        from concurrent.futures import ThreadPoolExecutor

        session = Session()
        workload = Workload.from_algorithm("blur", **SMALL)
        with ThreadPoolExecutor(max_workers=2) as pool:
            outputs = list(pool.map(
                lambda _: session.generate_vhdl(workload), range(2)))
        assert outputs[0] == outputs[1]
        lone = Session()
        lone.generate_vhdl(workload)
        assert session.stats.synthesis_runs == lone.stats.synthesis_runs

    def test_auxiliary_lookups_do_not_inflate_cache_hits(self):
        session = Session()
        workload = Workload.from_algorithm("blur", **SMALL)
        # an explorer_for BEFORE the first run must not turn that first,
        # fully-paid run into a "cache hit"
        session.explorer_for(workload)
        session.run(workload)
        session.explorer_for(workload)
        session.generate_vhdl(workload)
        assert session.stats.characterization_cache_hits == 0
        assert session.stats.characterization_cache_misses == 1

    @pytest.mark.slow
    def test_legacy_flow_first_run_is_a_cache_miss(self, igf_kernel):
        from repro import HlsFlow

        flow = HlsFlow(igf_kernel)
        flow.run()
        stats = flow._session.stats
        assert stats.characterization_cache_hits == 0
        assert stats.characterization_cache_misses == 1


class TestEventsAndStats:
    def test_run_emits_lifecycle_events(self):
        events = []
        session = Session(on_event=events.append)
        session.run(Workload.from_algorithm("blur", **SMALL))
        kinds = [event.kind for event in events]
        assert kinds[0] == "workload-started"
        assert kinds[-1] == "workload-finished"
        assert "stage-started" in kinds and "stage-finished" in kinds
        finished = [e for e in events if e.kind == "workload-finished"]
        assert finished[0].elapsed_s is not None

    def test_failed_workload_counted_and_reported(self):
        events = []
        session = Session(on_event=events.append)
        bad = Workload.from_algorithm("blur",
                                      calibration_windows_per_depth=1, **SMALL)
        with pytest.raises(ValueError, match="calibration_windows_per_depth"):
            session.run(bad)
        assert session.stats.workloads_failed == 1
        assert any(event.kind == "workload-failed" for event in events)

    def test_stats_track_tool_runtime(self):
        session = Session()
        session.run(Workload.from_algorithm("blur", **SMALL))
        stats = session.stats
        assert stats.synthesis_runs > 0
        assert stats.tool_runtime_spent_s > 0
        assert stats.tool_runtime_avoided_s > 0
        assert stats.workload_time_s > 0
        payload = stats.to_dict()
        assert payload["synthesis_runs"] == stats.synthesis_runs

    def test_mutating_a_result_does_not_corrupt_the_cache(self):
        session = Session()
        workload = Workload.from_algorithm("blur", **SMALL)
        first = session.run(workload)
        count = len(first.design_points)
        first.design_points.clear()
        first.exploration.pareto.clear()
        second = session.run(workload)
        assert len(second.design_points) == count
        assert second.pareto
        # codegen still finds a point after the caller gutted their copy
        assert session.generate_vhdl(workload)

    def test_tight_constraints_yield_empty_points_not_crash(self):
        session = Session()
        workload = Workload.from_algorithm(
            "blur", constraints=DseConstraints(max_area_luts=1.0), **SMALL)
        result = session.run(workload)
        assert result.design_points == []
        assert result.fastest_point() is None
        assert result.smallest_point() is None
        assert result.best_fitting_point() is None
