"""Unit tests for the staged pipeline."""

import pytest

from repro.api import Pipeline, PipelineError, STAGE_NAMES, Workload
from repro.api.results import FlowResult
from repro.dse.explorer import ExplorationResult
from repro.frontend.dsl import stencil_kernel


SMALL = dict(iterations=4, window_sides=(1, 2, 3), max_depth=2,
             max_cones_per_depth=3, frame_width=128, frame_height=96)


@pytest.fixture()
def small_pipeline():
    return Pipeline(Workload.from_algorithm("blur", **SMALL))


class TestStages:
    def test_stage_order_and_artifacts(self, small_pipeline):
        assert STAGE_NAMES == ("frontend", "analyze", "characterize",
                               "explore", "pareto", "codegen")
        kernel = small_pipeline.run_stage("frontend")
        assert kernel.name == "blur"
        analysis = small_pipeline.run_stage("analyze")
        assert analysis["invariance"].is_isl
        characterization = small_pipeline.run_stage("characterize")
        assert characterization["characterizations"]
        exploration = small_pipeline.run_stage("explore")
        assert isinstance(exploration, ExplorationResult)
        result = small_pipeline.run_stage("pareto")
        assert isinstance(result, FlowResult)
        assert result.pareto

    def test_running_a_late_stage_runs_prerequisites(self, small_pipeline):
        result = small_pipeline.run_stage("pareto")
        assert isinstance(result, FlowResult)
        for stage in ("frontend", "analyze", "characterize", "explore"):
            assert small_pipeline.has_run(stage)
            assert stage in small_pipeline.timings

    def test_unknown_stage_rejected(self, small_pipeline):
        with pytest.raises(PipelineError, match="unknown stage"):
            small_pipeline.run_stage("synthesize")

    def test_codegen_stage_produces_vhdl(self, small_pipeline):
        files = small_pipeline.run_stage("codegen")
        assert "isl_fixed_pkg.vhd" in files
        assert any(name.endswith("_top.vhd") for name in files)

    def test_non_isl_kernel_fails_in_analyze(self):
        def define(k):
            f = k.field("f")
            k.update(f, f(10, 0) + f(-10, 0))

        pipeline = Pipeline(Workload.from_kernel(
            stencil_kernel("wide", define), **SMALL))
        pipeline.run_stage("frontend")
        with pytest.raises(PipelineError, match="narrow|outside the ISL class"):
            pipeline.run_stage("analyze")

    def test_observer_sees_every_stage(self):
        events = []
        pipeline = Pipeline(
            Workload.from_algorithm("blur", **SMALL),
            observer=lambda stage, status, elapsed: events.append(
                (stage, status)))
        pipeline.run("pareto")
        started = [stage for stage, status in events if status == "started"]
        finished = [stage for stage, status in events if status == "finished"]
        assert started == list(STAGE_NAMES[:5])
        assert finished == list(STAGE_NAMES[:5])

    def test_result_runs_pipeline_once(self, small_pipeline):
        first = small_pipeline.result()
        second = small_pipeline.result()
        assert first is second
