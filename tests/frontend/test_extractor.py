"""Unit tests for the ISL pattern extractor (C AST -> StencilKernel)."""

import pytest

from repro.algorithms.chambolle import CHAMBOLLE_C_SOURCE, chambolle_kernel
from repro.algorithms.gaussian import IGF_C_SOURCE, iterative_gaussian_filter_kernel
from repro.algorithms.jacobi import JACOBI_C_SOURCE
from repro.frontend.extractor import ExtractionError, extract_kernel_from_c
from repro.symbolic.dependency import analyze_footprint
from repro.utils.geometry import Offset


class TestGaussianExtraction:
    def test_kernel_extracted(self):
        kernel = extract_kernel_from_c(IGF_C_SOURCE)
        assert kernel.name == "blur"
        assert kernel.state_field_names == ["f"]
        assert kernel.radius == 1
        assert len(list(kernel.read_offsets())) == 9

    def test_macros_become_parameters(self):
        kernel = extract_kernel_from_c(IGF_C_SOURCE)
        assert kernel.params == {"W_C": 0.25, "W_E": 0.125, "W_D": 0.0625}

    def test_extracted_matches_dsl_footprint(self):
        from_c = analyze_footprint(extract_kernel_from_c(IGF_C_SOURCE))
        from_dsl = analyze_footprint(iterative_gaussian_filter_kernel())
        assert set(from_c.offsets) == set(from_dsl.offsets)


class TestChambolleExtraction:
    def test_vector_field_and_readonly_input(self):
        kernel = extract_kernel_from_c(CHAMBOLLE_C_SOURCE)
        assert kernel.state_field_names == ["p"]
        assert kernel.readonly_field_names == ["g"]
        assert kernel.field_map["p"].components == 2
        assert {u.component for u in kernel.updates} == {0, 1}

    def test_footprint_matches_dsl(self):
        from_c = analyze_footprint(extract_kernel_from_c(CHAMBOLLE_C_SOURCE))
        from_dsl = analyze_footprint(chambolle_kernel())
        assert from_c.radius == from_dsl.radius == 1


class TestJacobiExtraction:
    def test_readonly_rhs_field(self):
        kernel = extract_kernel_from_c(JACOBI_C_SOURCE)
        assert kernel.state_field_names == ["u"]
        assert "rhs" in kernel.readonly_field_names


class TestErrorHandling:
    def test_missing_loop_nest(self):
        source = """
        void f(float out[H][W], const float in[H][W]) {
            out[0][0] = in[0][0];
        }
        """
        with pytest.raises(ExtractionError, match="nested spatial loop"):
            extract_kernel_from_c(source)

    def test_non_constant_offset_rejected(self):
        source = """
        void f(float out[H][W], const float in[H][W]) {
            for (int y = 1; y < H; y++) {
                for (int x = 1; x < W; x++) {
                    out[y][x] = in[y][x * 2];
                }
            }
        }
        """
        with pytest.raises(ExtractionError, match="translation invariance"):
            extract_kernel_from_c(source)

    def test_loop_index_outside_subscript_rejected(self):
        source = """
        void f(float out[H][W], const float in[H][W]) {
            for (int y = 1; y < H; y++) {
                for (int x = 1; x < W; x++) {
                    out[y][x] = in[y][x] + x;
                }
            }
        }
        """
        with pytest.raises(ExtractionError, match="not translation invariant"):
            extract_kernel_from_c(source)

    def test_read_of_output_array_rejected(self):
        source = """
        void f(float out[H][W], const float in[H][W]) {
            for (int y = 1; y < H; y++) {
                for (int x = 1; x < W; x++) {
                    out[y][x] = in[y][x] + out[y][x - 1];
                }
            }
        }
        """
        with pytest.raises(ExtractionError, match="output array"):
            extract_kernel_from_c(source)

    def test_output_written_at_offset_rejected(self):
        source = """
        void f(float out[H][W], const float in[H][W]) {
            for (int y = 1; y < H; y++) {
                for (int x = 1; x < W; x++) {
                    out[y][x + 1] = in[y][x];
                }
            }
        }
        """
        with pytest.raises(ExtractionError, match="written at the loop indices"):
            extract_kernel_from_c(source)

    def test_unknown_scalar_identifier_rejected(self):
        source = """
        void f(float out[H][W], const float in[H][W]) {
            for (int y = 1; y < H; y++) {
                for (int x = 1; x < W; x++) {
                    out[y][x] = gain * in[y][x];
                }
            }
        }
        """
        with pytest.raises(ExtractionError, match="gain"):
            extract_kernel_from_c(source)

    def test_scalar_parameter_with_supplied_value_accepted(self):
        source = """
        void f(float out[H][W], const float in[H][W], float gain) {
            for (int y = 1; y < H; y++) {
                for (int x = 1; x < W; x++) {
                    out[y][x] = gain * in[y][x];
                }
            }
        }
        """
        kernel = extract_kernel_from_c(source, scalar_params={"gain": 2.0})
        assert kernel.params == {"gain": 2.0}


class TestStructuralFeatures:
    def test_local_temporaries_are_inlined(self):
        source = """
        void f(float out[H][W], const float in[H][W]) {
            for (int y = 1; y < H; y++) {
                for (int x = 1; x < W; x++) {
                    float left = in[y][x - 1];
                    float right = in[y][x + 1];
                    out[y][x] = 0.5f * (left + right);
                }
            }
        }
        """
        kernel = extract_kernel_from_c(source)
        offsets = kernel.read_offsets()
        assert Offset(-1, 0) in offsets and Offset(1, 0) in offsets

    def test_in_place_update_pairs_with_itself(self):
        source = """
        void f(float a[H][W]) {
            for (int y = 1; y < H; y++) {
                for (int x = 1; x < W; x++) {
                    a[y][x] = 0.5f * (a[y][x - 1] + a[y][x + 1]);
                }
            }
        }
        """
        kernel = extract_kernel_from_c(source)
        assert kernel.state_field_names == ["a"]

    def test_explicit_state_map(self):
        source = """
        void f(float dst[H][W], const float srca[H][W], const float srcb[H][W]) {
            for (int y = 1; y < H; y++) {
                for (int x = 1; x < W; x++) {
                    dst[y][x] = 0.5f * (srca[y][x] + srcb[y][x]);
                }
            }
        }
        """
        kernel = extract_kernel_from_c(source, state_map={"dst": "srca"})
        assert kernel.state_field_names == ["srca"]
        assert "srcb" in kernel.readonly_field_names

    def test_kernel_name_override(self):
        kernel = extract_kernel_from_c(IGF_C_SOURCE, kernel_name="my_blur")
        assert kernel.name == "my_blur"

    def test_outer_iteration_loop_is_skipped(self):
        source = """
        void f(float out[H][W], const float in[H][W]) {
            for (int it = 0; it < 10; it++) {
                for (int y = 1; y < H; y++) {
                    for (int x = 1; x < W; x++) {
                        out[y][x] = 0.25f * (in[y][x - 1] + in[y][x + 1]
                                           + in[y - 1][x] + in[y + 1][x]);
                    }
                }
            }
        }
        """
        kernel = extract_kernel_from_c(source)
        assert kernel.radius == 1
        assert len(list(kernel.read_offsets())) == 4
