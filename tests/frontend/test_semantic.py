"""Unit tests for kernel semantic analysis (ISL applicability checks)."""

import pytest

from repro.frontend.dsl import stencil_kernel
from repro.frontend.kernel_ir import KernelValidationError
from repro.frontend.semantic import validate_kernel


def test_igf_properties(igf_kernel):
    props = validate_kernel(igf_kernel)
    assert props.radius == 1
    assert props.footprint_size == 9
    assert props.state_fields == ("f",)
    assert props.readonly_fields == ()
    assert props.is_domain_narrow and props.is_translation_invariant
    assert not props.has_division and not props.has_sqrt
    assert props.total_state_components == 1
    assert "radius=1" in props.summary()


def test_chambolle_properties(chambolle_kernel):
    props = validate_kernel(chambolle_kernel)
    assert props.radius == 1
    assert props.state_fields == ("p",)
    assert props.readonly_fields == ("g",)
    assert props.total_state_components == 2
    assert props.has_division and props.has_sqrt


def test_erosion_has_no_arithmetic_flags(erosion_kernel):
    props = validate_kernel(erosion_kernel)
    assert not props.has_division
    assert not props.has_sqrt
    assert props.footprint_size == 9


def test_wide_stencil_rejected_in_strict_mode():
    def define(k):
        f = k.field("f")
        k.update(f, f(12, 0) + f(-12, 0))

    wide = stencil_kernel("wide", define)
    with pytest.raises(KernelValidationError, match="not domain-narrow"):
        validate_kernel(wide, strict=True)
    props = validate_kernel(wide, strict=False)
    assert not props.is_domain_narrow
    assert props.radius == 12


def test_non_iterative_kernel_rejected():
    def define(k):
        f = k.field("f")
        g = k.field("g")
        k.update(f, g(0, 0) * 2.0)

    kernel = stencil_kernel("notiter", define)
    with pytest.raises(KernelValidationError, match="never read"):
        validate_kernel(kernel)
