"""Unit tests for the C-subset lexer."""

import pytest

from repro.frontend.c_ast import CParseError
from repro.frontend.c_lexer import Lexer, TokenKind


def tokenize(source):
    return [t for t in Lexer(source).tokenize() if t.kind is not TokenKind.EOF]


def test_identifiers_and_keywords_distinguished():
    tokens = tokenize("float foo_bar for x1")
    kinds = [t.kind for t in tokens]
    assert kinds == [TokenKind.KEYWORD, TokenKind.IDENT, TokenKind.KEYWORD,
                     TokenKind.IDENT]


def test_integer_and_float_literals():
    tokens = tokenize("42 3.14 0.5f 1e-3 2.5E+2f")
    assert all(t.kind is TokenKind.NUMBER for t in tokens)
    assert [t.text for t in tokens] == ["42", "3.14", "0.5", "1e-3", "2.5E+2"]


def test_multi_character_punctuators():
    tokens = tokenize("a <= b >= c == d != e && f || g++")
    punct = [t.text for t in tokens if t.kind is TokenKind.PUNCT]
    assert punct == ["<=", ">=", "==", "!=", "&&", "||", "++"]


def test_comments_are_skipped():
    tokens = tokenize("a // line comment\n b /* block\n comment */ c")
    assert [t.text for t in tokens] == ["a", "b", "c"]


def test_unterminated_block_comment_raises():
    with pytest.raises(CParseError):
        tokenize("a /* never closed")


def test_unexpected_character_raises():
    with pytest.raises(CParseError):
        tokenize("a @ b")


def test_line_and_column_tracking():
    tokens = tokenize("a\n  b")
    assert tokens[0].line == 1 and tokens[0].column == 1
    assert tokens[1].line == 2 and tokens[1].column == 3


def test_eof_token_terminates_stream():
    tokens = Lexer("x").tokenize()
    assert tokens[-1].kind is TokenKind.EOF
