"""Unit tests for the C-subset parser."""

import pytest

from repro.frontend.c_ast import (
    CArrayAccess,
    CAssignment,
    CBinOp,
    CCall,
    CDeclaration,
    CFor,
    CNumber,
    CParseError,
    CTernary,
)
from repro.frontend.c_parser import parse_c_source


SIMPLE = """
#define ALPHA 0.5f
void step(float out[H][W], const float in[H][W]) {
    for (int y = 1; y < H - 1; y++) {
        for (int x = 1; x < W - 1; x++) {
            out[y][x] = ALPHA * in[y][x] + in[y][x + 1];
        }
    }
}
"""


def test_defines_collected_and_stripped():
    unit = parse_c_source(SIMPLE)
    assert unit.defines == {"ALPHA": 0.5}


def test_includes_and_pragmas_ignored():
    unit = parse_c_source("#include <math.h>\n#pragma HLS pipeline\n" + SIMPLE)
    assert len(unit.functions) == 1


def test_function_signature_parsed():
    func = parse_c_source(SIMPLE).function("step")
    assert func.return_type == "void"
    assert [p.name for p in func.params] == ["out", "in"]
    assert func.params[0].array_dims == ("H", "W")
    assert func.params[1].is_const


def test_single_function_lookup_without_name():
    assert parse_c_source(SIMPLE).function().name == "step"


def test_missing_function_raises():
    with pytest.raises(CParseError):
        parse_c_source(SIMPLE).function("nope")


def test_nested_for_loops_parsed():
    func = parse_c_source(SIMPLE).function()
    outer = func.body[0]
    assert isinstance(outer, CFor)
    assert outer.var == "y"
    inner = outer.body[0]
    assert isinstance(inner, CFor)
    assert inner.var == "x"
    assert isinstance(inner.body[0], CAssignment)


def test_inclusive_loop_bound_rewritten():
    source = """
    void f(float out[H][W], const float in[H][W]) {
        for (int y = 0; y <= H; y++) {
            for (int x = 0; x <= W; x++) {
                out[y][x] = in[y][x];
            }
        }
    }
    """
    loop = parse_c_source(source).function().body[0]
    assert isinstance(loop.upper, CBinOp) and loop.upper.op == "+"


def test_local_declarations_and_compound_assignment():
    source = """
    void f(float out[H][W], const float in[H][W]) {
        for (int y = 1; y < H; y++) {
            for (int x = 1; x < W; x++) {
                float acc = in[y][x];
                acc += in[y][x - 1];
                out[y][x] = acc;
            }
        }
    }
    """
    inner = parse_c_source(source).function().body[0].body[0]
    statements = inner.body
    assert isinstance(statements[0], CDeclaration)
    assert isinstance(statements[1], CAssignment)
    assert isinstance(statements[1].value, CBinOp)


def test_ternary_and_intrinsics():
    source = """
    void f(float out[H][W], const float in[H][W]) {
        for (int y = 1; y < H; y++) {
            for (int x = 1; x < W; x++) {
                out[y][x] = in[y][x] > 0.0f ? sqrtf(in[y][x]) : fminf(in[y][x], 0.0f);
            }
        }
    }
    """
    assignment = parse_c_source(source).function().body[0].body[0].body[0]
    assert isinstance(assignment.value, CTernary)
    assert isinstance(assignment.value.if_true, CCall)
    assert assignment.value.if_true.name == "sqrtf"


def test_unsupported_function_call_rejected():
    source = """
    void f(float out[H][W], const float in[H][W]) {
        for (int y = 1; y < H; y++) {
            for (int x = 1; x < W; x++) {
                out[y][x] = my_helper(in[y][x]);
            }
        }
    }
    """
    with pytest.raises(CParseError, match="unsupported function"):
        parse_c_source(source)


def test_unsupported_loop_condition_rejected():
    source = """
    void f(float out[H][W]) {
        for (int y = H; y > 0; y++) {
            out[y][0] = 0.0f;
        }
    }
    """
    with pytest.raises(CParseError):
        parse_c_source(source)


def test_3d_array_parameters():
    source = """
    void f(float pn[2][H][W], const float p[2][H][W]) {
        for (int y = 1; y < H; y++) {
            for (int x = 1; x < W; x++) {
                pn[0][y][x] = p[0][y][x] + p[1][y][x];
            }
        }
    }
    """
    func = parse_c_source(source).function()
    assert func.params[0].array_dims == ("2", "H", "W")
    assignment = func.body[0].body[0].body[0]
    assert isinstance(assignment.target, CArrayAccess)
    assert len(assignment.target.indices) == 3
    assert isinstance(assignment.target.indices[0], CNumber)


def test_cast_expression_accepted():
    source = """
    void f(float out[H][W], const float in[H][W]) {
        for (int y = 1; y < H; y++) {
            for (int x = 1; x < W; x++) {
                out[y][x] = (float) in[y][x] * 2.0f;
            }
        }
    }
    """
    assert parse_c_source(source).function().name == "f"
