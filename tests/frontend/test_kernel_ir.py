"""Unit tests for the kernel IR data structures and their validation."""

import pytest

from repro.frontend.kernel_ir import (
    BinOpKind,
    BinaryOp,
    FieldDecl,
    FieldRead,
    FieldUpdate,
    KernelValidationError,
    Literal,
    ParamRef,
    StencilKernel,
    UnOpKind,
    UnaryOp,
)
from repro.utils.geometry import Offset


def _simple_expr():
    return BinaryOp(BinOpKind.ADD,
                    FieldRead("f", Offset(1, 0)),
                    FieldRead("f", Offset(-1, 0)))


def make_kernel(**overrides):
    kwargs = dict(
        name="k",
        fields=[FieldDecl("f")],
        updates=[FieldUpdate("f", 0, _simple_expr())],
        params={},
    )
    kwargs.update(overrides)
    return StencilKernel(**kwargs)


class TestValidation:
    def test_valid_kernel_builds(self):
        kernel = make_kernel()
        assert kernel.name == "k"

    def test_empty_name_rejected(self):
        with pytest.raises(KernelValidationError):
            make_kernel(name="")

    def test_no_updates_rejected(self):
        with pytest.raises(KernelValidationError):
            make_kernel(updates=[])

    def test_update_of_undeclared_field_rejected(self):
        with pytest.raises(KernelValidationError):
            make_kernel(updates=[FieldUpdate("ghost", 0, _simple_expr())])

    def test_component_out_of_range_rejected(self):
        with pytest.raises(KernelValidationError):
            make_kernel(updates=[FieldUpdate("f", 1, _simple_expr())])

    def test_duplicate_update_rejected(self):
        with pytest.raises(KernelValidationError):
            make_kernel(updates=[FieldUpdate("f", 0, _simple_expr()),
                                 FieldUpdate("f", 0, _simple_expr())])

    def test_read_of_undeclared_field_rejected(self):
        expr = FieldRead("ghost", Offset(0, 0))
        with pytest.raises(KernelValidationError):
            make_kernel(updates=[FieldUpdate("f", 0, expr)])

    def test_undeclared_parameter_rejected(self):
        expr = BinaryOp(BinOpKind.MUL, ParamRef("tau"), FieldRead("f", Offset(0, 0)))
        with pytest.raises(KernelValidationError):
            make_kernel(updates=[FieldUpdate("f", 0, expr)])

    def test_duplicate_field_declaration_rejected(self):
        with pytest.raises(KernelValidationError):
            make_kernel(fields=[FieldDecl("f"), FieldDecl("f")])

    def test_field_with_zero_components_rejected(self):
        with pytest.raises(KernelValidationError):
            FieldDecl("f", components=0)


class TestDerivedProperties:
    def test_radius_and_footprint(self):
        kernel = make_kernel()
        assert kernel.radius == 1
        offsets = kernel.read_offsets()
        assert offsets == {Offset(1, 0), Offset(-1, 0)}
        window = kernel.footprint_window
        assert (window.x0, window.x1) == (-1, 1)

    def test_readonly_fields_do_not_affect_radius(self):
        expr = BinaryOp(BinOpKind.ADD,
                        FieldRead("f", Offset(0, 0)),
                        FieldRead("g", Offset(5, 5)))
        kernel = StencilKernel(
            name="k",
            fields=[FieldDecl("f"), FieldDecl("g")],
            updates=[FieldUpdate("f", 0, expr)],
        )
        assert kernel.radius == 0
        assert kernel.readonly_field_names == ["g"]
        assert kernel.state_field_names == ["f"]

    def test_operation_count(self):
        kernel = make_kernel()
        assert kernel.operation_count == 1

    def test_update_for_lookup(self):
        kernel = make_kernel()
        assert kernel.update_for("f", 0).field_name == "f"
        with pytest.raises(KeyError):
            kernel.update_for("f", 3)

    def test_str_rendering_mentions_updates(self):
        text = str(make_kernel())
        assert "kernel k" in text
        assert "f[0] <-" in text


class TestExpressionNodes:
    def test_reads_iteration_includes_nested(self):
        expr = UnaryOp(UnOpKind.ABS, _simple_expr())
        assert len(list(expr.reads())) == 2

    def test_node_count(self):
        assert _simple_expr().node_count() == 3
        assert Literal(1.0).node_count() == 1

    def test_str_forms(self):
        assert "f[+1,+0]" in str(_simple_expr())
        assert str(ParamRef("tau")) == "tau"
        assert "abs" in str(UnaryOp(UnOpKind.ABS, Literal(2.0)))
