"""Unit tests for the Python stencil DSL."""

import pytest

from repro.frontend.dsl import KernelBuilder, stencil_kernel
from repro.frontend.kernel_ir import (
    BinOpKind,
    BinaryOp,
    FieldRead,
    KernelValidationError,
    Literal,
    ParamRef,
    Select,
    UnaryOp,
)
from repro.utils.geometry import Offset


def test_field_read_offsets():
    def define(k):
        f = k.field("f")
        k.update(f, f(1, -2))

    kernel = stencil_kernel("t", define)
    read = kernel.updates[0].expr
    assert isinstance(read, FieldRead)
    assert read.offset == Offset(1, -2)
    assert read.field_name == "f"


def test_arithmetic_operators_build_binary_ops():
    def define(k):
        f = k.field("f")
        k.update(f, (f(0, 0) + 1.0) * 2.0 - f(1, 0) / 4.0)

    kernel = stencil_kernel("t", define)
    expr = kernel.updates[0].expr
    assert isinstance(expr, BinaryOp)
    assert expr.kind is BinOpKind.SUB


def test_reflected_operators_with_scalars():
    def define(k):
        f = k.field("f")
        k.update(f, 2.0 * f(0, 0) + 1.0 - f(0, 0))

    kernel = stencil_kernel("t", define)
    assert kernel.operation_count == 3


def test_negation_and_unary():
    def define(k):
        f = k.field("f")
        k.update(f, -f(0, 0) + k.absolute(f(1, 0)) + k.sqrt(f(0, 1)))

    kernel = stencil_kernel("t", define)
    assert kernel.operation_count >= 4


def test_min_max_select_helpers():
    def define(k):
        f = k.field("f")
        clamped = k.minimum(k.maximum(f(0, 0), 0.0), 1.0)
        k.update(f, k.select(f(0, 0) > 0.5, clamped, f(1, 1)))

    kernel = stencil_kernel("t", define)
    assert isinstance(kernel.updates[0].expr, Select)


def test_params_are_declared_with_defaults():
    def define(k):
        f = k.field("f")
        tau = k.param("tau", 0.25)
        k.update(f, tau * f(0, 0))

    kernel = stencil_kernel("t", define)
    assert kernel.params == {"tau": 0.25}
    expr = kernel.updates[0].expr
    assert isinstance(expr, BinaryOp)
    assert isinstance(expr.left, ParamRef)


def test_vector_field_components():
    def define(k):
        p = k.field("p", components=2)
        p0, p1 = p.component(0), p.component(1)
        k.update(p0, p0(0, 0) + p1(1, 0))
        k.update(p1, p1(0, 0) - p0(0, 1))

    kernel = stencil_kernel("t", define)
    assert len(kernel.updates) == 2
    assert {u.component for u in kernel.updates} == {0, 1}


def test_component_out_of_range_rejected():
    builder = KernelBuilder("t")
    p = builder.field("p", components=2)
    with pytest.raises(KernelValidationError):
        p.component(2)


def test_update_of_undeclared_field_rejected():
    builder = KernelBuilder("t")
    builder.field("f")
    with pytest.raises(KernelValidationError):
        builder.update("ghost", 1.0)


def test_field_redeclaration_with_different_components_rejected():
    builder = KernelBuilder("t")
    builder.field("f", components=1)
    with pytest.raises(KernelValidationError):
        builder.field("f", components=2)


def test_field_redeclaration_with_same_components_is_idempotent():
    builder = KernelBuilder("t")
    a = builder.field("f")
    b = builder.field("f")
    assert a.name == b.name


def test_invalid_expression_operand_rejected():
    builder = KernelBuilder("t")
    f = builder.field("f")
    with pytest.raises(TypeError):
        _ = f(0, 0) + "not a number"


def test_kernel_without_updates_rejected():
    with pytest.raises(KernelValidationError):
        stencil_kernel("empty", lambda k: k.field("f") and None)


def test_description_is_propagated():
    def define(k):
        f = k.field("f")
        k.update(f, f(0, 0))

    kernel = stencil_kernel("named", define, description="demo kernel")
    assert kernel.description == "demo kernel"
