"""Propagation-edge tests: spans must stay connected across every hop —
HTTP (client -> server header), pool threads, shipped worker reports,
and the full fleet path (submit -> route -> job -> dispatch -> stages ->
stream shards) — while digests stay bit-identical with tracing on."""

import hashlib
import json
import time
import urllib.request

import pytest

from repro.api import Session, Workload
from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.stream import clear_stream_caches, explore_stream
from repro.fleet.router import FleetRouter
from repro.ir.operators import DataFormat
from repro.obs import trace
from repro.service import ReproClient, ReproServer, UnknownJobError

SMALL = dict(iterations=4, window_sides=(1, 2, 3), max_depth=2,
             max_cones_per_depth=3, frame_width=320, frame_height=240)


def workload(name="blur", **overrides):
    return Workload.from_algorithm(name, **{**SMALL, **overrides})


def digest(result):
    return hashlib.sha256(json.dumps(result.to_dict(),
                                     sort_keys=True).encode()).hexdigest()


def serialized_points(points):
    return json.dumps([p.to_dict() for p in points], sort_keys=True)


def wait_for_spans(trace_id, predicate, timeout=10.0):
    """Spans land asynchronously (job spans finish on the dispatcher
    thread); poll the global store until the predicate holds."""
    deadline = time.monotonic() + timeout
    spans = trace.global_store().get(trace_id) or []
    while not predicate(spans) and time.monotonic() < deadline:
        time.sleep(0.05)
        spans = trace.global_store().get(trace_id) or []
    return spans


@pytest.fixture()
def http_server():
    server = ReproServer()
    host, port = server.serve_http("127.0.0.1", 0)
    yield server, f"http://{host}:{port}"
    server.close(drain=False)


@pytest.fixture(scope="module")
def stream_inputs(igf_kernel):
    explorer = DesignSpaceExplorer(
        igf_kernel, data_format=DataFormat.FIXED16,
        window_sides=(1, 2, 3, 4), max_depth=3,
        max_cones_per_depth=6, synthesize_all=True)
    characterizations, _ = explorer.characterize_cones(6)
    space = explorer._space(6)
    usable = explorer.device.usable_capacity.luts
    return explorer, space, characterizations, usable


class TestHttpPropagation:
    def test_submit_joins_the_callers_trace_over_http(self, http_server):
        _server, url = http_server  # construction auto-enabled tracing
        client = ReproClient(url)
        with trace.span("cli.submit") as root:
            handle = client.submit(workload(), priority="interactive")
            handle.result(timeout=120)
        # the receipt's trace id IS the caller's: one connected trace
        assert handle.trace_id == root.trace_id
        spans = wait_for_spans(
            root.trace_id,
            lambda spans: {"service.job", "scheduler.dispatch"}
            <= {s["name"] for s in spans})
        names = {s["name"] for s in spans}
        assert {"cli.submit", "service.job", "scheduler.dispatch",
                "session.run"} <= names
        assert any(name.startswith("stage.") for name in names)
        assert all(s["trace_id"] == root.trace_id for s in spans)
        payload = client.trace(root.trace_id)  # GET /trace/<id>
        assert payload["trace_id"] == root.trace_id
        assert {s["span_id"] for s in payload["spans"]} \
            == {s["span_id"] for s in spans}

    def test_malformed_headers_degrade_to_fresh_roots_never_500(
            self, http_server):
        _server, url = http_server
        body = json.dumps({"workload": workload().to_dict(),
                           "priority": "interactive"}).encode()
        seen = set()
        for bad in ("garbage", "a-b", "Z" * 32 + "-" + "Z" * 16,
                    "0" * 31 + "-" + "0" * 16):
            request = urllib.request.Request(
                url + "/submit", data=body,
                headers={"Content-Type": "application/json",
                         trace.TRACE_HEADER: bad})
            with urllib.request.urlopen(request, timeout=30) as response:
                assert response.status == 200
                receipt = json.loads(response.read().decode())
            # a fresh root trace, not the garbage id and not an error
            assert receipt["trace_id"]
            int(receipt["trace_id"], 16)
            seen.add(receipt["trace_id"])
        ReproClient(url).result(receipt["job_id"], timeout=120)

    def test_absent_header_still_yields_a_server_side_trace(
            self, http_server):
        _server, url = http_server
        assert not trace.context_payload()  # client context is empty
        handle = ReproClient(url).submit(workload())
        handle.result(timeout=120)
        assert handle.trace_id is not None
        spans = wait_for_spans(
            handle.trace_id,
            lambda spans: "service.job" in {s["name"] for s in spans})
        assert "service.job" in {s["name"] for s in spans}

    def test_trace_index_and_unknown_trace(self, http_server):
        _server, url = http_server
        client = ReproClient(url)
        handle = client.submit(workload())
        handle.result(timeout=120)
        wait_for_spans(handle.trace_id, lambda spans: bool(spans))
        index = client.trace()
        assert handle.trace_id in {entry["trace_id"]
                                   for entry in index["traces"]}
        assert index["store"]["spans_added"] > 0
        with pytest.raises(UnknownJobError, match="unknown trace"):
            client.trace("f" * 32)


class TestWorkerHandoff:
    def test_run_many_thread_workers_join_the_trace(self):
        trace.enable()
        session = Session()
        with trace.span("root") as root:
            session.run_many([workload("blur"), workload("jacobi")],
                             max_workers=2, executor="threads")
        spans = trace.global_store().get(root.trace_id)
        names = [s["name"] for s in spans]
        assert "session.run_many" in names
        assert names.count("session.run") == 2
        run_many = next(s for s in spans
                        if s["name"] == "session.run_many")
        runs = [s for s in spans if s["name"] == "session.run"]
        # pool threads re-entered the captured context explicitly
        assert all(s["parent_id"] == run_many["span_id"] for s in runs)

    def test_stream_shards_parent_under_the_explore_span(
            self, stream_inputs):
        explorer, space, characterizations, usable = stream_inputs
        trace.enable()
        with trace.span("root") as root:
            explore_stream(space, characterizations,
                           explorer.throughput_model, 128, 96,
                           usable_luts=usable, chunk_rows=2,
                           jobs=2, executor="threads")
        spans = trace.global_store().get(root.trace_id)
        explore = next(s for s in spans if s["name"] == "stream.explore")
        shards = [s for s in spans if s["name"] == "stream.shard"]
        assert len(shards) == 2
        assert all(s["parent_id"] == explore["span_id"] for s in shards)
        assert sum(s["attributes"]["chunks"] for s in shards) \
            == explore["attributes"]["chunks"]

    def test_cold_recorder_workers_ship_spans_through_the_report(
            self, stream_inputs, monkeypatch):
        """A process worker starts with the recorder off; its spans must
        ride home inside the fold report (capture -> absorb).  Simulated
        in-process by running each shard fold under a disabled recorder,
        which is exactly the child interpreter's state."""
        import repro.dse.stream as stream_mod

        real_fold = stream_mod._fold_chunk_shard

        def child_like(payload):
            saved = (trace._ENABLED, trace._SINKS)
            trace._ENABLED, trace._SINKS = False, ()
            try:
                return real_fold(payload)
            finally:
                trace._ENABLED, trace._SINKS = saved

        monkeypatch.setattr(stream_mod, "_fold_chunk_shard", child_like)
        explorer, space, characterizations, usable = stream_inputs
        trace.enable()
        with trace.span("root") as root:
            explore_stream(space, characterizations,
                           explorer.throughput_model, 128, 96,
                           usable_luts=usable, chunk_rows=2,
                           jobs=2, executor="threads")
        spans = trace.global_store().get(root.trace_id)
        shards = [s for s in spans if s["name"] == "stream.shard"]
        explore = next(s for s in spans if s["name"] == "stream.explore")
        assert len(shards) == 2  # absorbed, not recorded live
        assert all(s["parent_id"] == explore["span_id"] for s in shards)

    def test_digests_are_bit_identical_with_tracing_on(
            self, stream_inputs):
        explorer, space, characterizations, usable = stream_inputs
        untraced = explore_stream(space, characterizations,
                                  explorer.throughput_model, 128, 96,
                                  usable_luts=usable, chunk_rows=2,
                                  jobs=2, executor="threads")
        trace.enable()
        with trace.span("root"):
            traced = explore_stream(space, characterizations,
                                    explorer.throughput_model, 128, 96,
                                    usable_luts=usable, chunk_rows=2,
                                    jobs=2, executor="threads")
        assert serialized_points(traced.pareto) \
            == serialized_points(untraced.pareto)
        assert serialized_points(traced.top_points) \
            == serialized_points(untraced.top_points)
        assert traced.admitted_rows == untraced.admitted_rows


class TestFleetTrace:
    def test_one_fleet_submit_yields_one_connected_trace(self):
        # same stream executor as the fleet workers' schedulers, so the
        # result metadata (worker fan-out) matches bit-for-bit too
        reference = digest(Session(stream_executor="threads").run(
            workload(stream=True, chunk_rows=2, stream_jobs=2)))
        # both runs start with a cold process-global mask cache, so the
        # streamed metadata (mask_cache_hit) matches too
        clear_stream_caches()
        with FleetRouter.local(2, healthcheck_interval_s=0) as fleet:
            client = ReproClient(fleet)
            with trace.span("cli.submit") as root:
                handle = client.submit(
                    workload(stream=True, chunk_rows=2, stream_jobs=2),
                    role="operator")
                result = handle.result(timeout=120)
            assert digest(result) == reference
            assert handle.trace_id == root.trace_id
            required = {"cli.submit", "fleet.route", "service.job",
                        "scheduler.dispatch", "session.run",
                        "stream.explore"}
            spans = wait_for_spans(
                root.trace_id,
                lambda spans: required <= {s["name"] for s in spans})
            payload = fleet.trace(root.trace_id)
            spans = payload["spans"]
            names = {s["name"] for s in spans}
            assert required <= names
            assert any(name.startswith("stage.") for name in names)
            shards = [s for s in spans if s["name"] == "stream.shard"]
            assert len(shards) >= 2
            # one trace id throughout, and every non-root span's parent
            # is present: the tree is fully connected
            assert all(s["trace_id"] == root.trace_id for s in spans)
            ids = {s["span_id"] for s in spans}
            roots = [s for s in spans if s["parent_id"] is None]
            assert [s["name"] for s in roots] == ["cli.submit"]
            assert all(s["parent_id"] in ids for s in spans
                       if s["parent_id"] is not None)
