"""Obs tests mutate process-global recorder state; isolate every test."""

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def clean_obs_state():
    trace.disable()
    trace.global_store().clear()
    yield
    trace.disable()
    trace.global_store().clear()
