"""Unit tests for repro.obs.metrics (typed instruments, the registry,
and the strict exposition parser) plus the typed rendering contract of
repro.service.metrics.render_prometheus."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_exposition,
)
from repro.service.metrics import COUNTER_LEAVES, render_prometheus


class TestInstruments:
    def test_counter_is_monotone(self):
        counter = Counter("repro_test_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)
        assert counter.snapshot() == {"type": "counter", "value": 3.5}

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("repro_test_level")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0
        assert gauge.snapshot() == {"type": "gauge", "value": 13.0}

    def test_histogram_snapshot_is_cumulative(self):
        histogram = Histogram("repro_test_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):  # 50 > top bucket
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["type"] == "histogram"
        assert snapshot["buckets"] == [(0.1, 1), (1.0, 3), (10.0, 4)]
        assert snapshot["count"] == 5
        assert snapshot["sum"] == pytest.approx(56.05)

    def test_histogram_ignores_non_finite_observations(self):
        histogram = Histogram("repro_test_seconds")
        histogram.observe(math.nan)
        histogram.observe(math.inf)
        assert histogram.count == 0

    def test_histogram_bucket_validation(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram("repro_bad", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="finite"):
            Histogram("repro_bad", buckets=(1.0, math.inf))
        with pytest.raises(ValueError, match="bucket"):
            Histogram("repro_bad", buckets=())

    def test_default_latency_buckets_are_log_spaced_and_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) \
            == sorted(set(DEFAULT_LATENCY_BUCKETS))
        assert DEFAULT_LATENCY_BUCKETS[0] == 0.0005
        assert DEFAULT_LATENCY_BUCKETS[-1] == 50.0

    def test_metric_names_validated(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("1starts-with-digit")


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("repro_a") is registry.counter("repro_a")
        registry.counter("repro_a").inc()
        assert registry.snapshot()["repro_a"]["value"] == 1.0

    def test_kind_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_a")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("repro_a")
        with pytest.raises(TypeError, match="already registered"):
            registry.histogram("repro_a")

    def test_snapshot_is_name_sorted(self):
        registry = MetricsRegistry()
        registry.gauge("repro_z")
        registry.counter("repro_a")
        assert list(registry.snapshot()) == ["repro_a", "repro_z"]


class TestRenderPrometheus:
    def test_monotone_leaves_render_as_counters_not_gauges(self):
        # regression: pre-obs every leaf rendered as gauge, which breaks
        # rate()/increase() over restarts for lifetime totals
        stats = {"queue": {"submitted": 4, "pending": 1},
                 "session": {"synthesis_runs": 9, "max_depth": 3}}
        text = render_prometheus(stats)
        assert "# TYPE repro_queue_submitted counter" in text
        assert "# TYPE repro_queue_pending gauge" in text
        assert "# TYPE repro_session_synthesis_runs counter" in text
        assert "# TYPE repro_session_max_depth gauge" in text
        parse_exposition(text)  # and the result is valid 0.0.4

    def test_every_counter_leaf_actually_types_as_counter(self):
        stats = {key: 1 for key in COUNTER_LEAVES}
        families = parse_exposition(render_prometheus(stats))
        assert all(entry["type"] == "counter"
                   for entry in families.values())

    def test_registry_histograms_render_full_family(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_wait_seconds",
                                       buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(7.0)
        registry.counter("repro_fleet_submits_role_guest").inc(2)
        text = render_prometheus({"queue": {"pending": 0}},
                                 registry=registry)
        families = parse_exposition(text)
        assert families["repro_wait_seconds"]["type"] == "histogram"
        samples = {name: value for name, labels, value
                   in families["repro_wait_seconds"]["samples"]
                   if name != "repro_wait_seconds_bucket"}
        assert samples["repro_wait_seconds_count"] == 3
        assert samples["repro_wait_seconds_sum"] == pytest.approx(7.55)
        buckets = [(labels["le"], value) for name, labels, value
                   in families["repro_wait_seconds"]["samples"]
                   if name == "repro_wait_seconds_bucket"]
        assert buckets == [("0.1", 1.0), ("1", 2.0), ("+Inf", 3.0)]
        assert families["repro_fleet_submits_role_guest"]["type"] \
            == "counter"

    def test_deterministic_and_newline_terminated(self):
        stats = {"b": 2, "a": {"c": 1}}
        first = render_prometheus(stats)
        assert first == render_prometheus(stats)
        assert first.endswith("\n")


class TestParseExposition:
    def test_rejects_sample_without_type_line(self):
        with pytest.raises(ValueError, match="no preceding # TYPE"):
            parse_exposition("repro_x 1\n")

    def test_rejects_duplicate_series_and_type(self):
        with pytest.raises(ValueError, match="duplicate series"):
            parse_exposition("# TYPE repro_x gauge\n"
                             "repro_x 1\nrepro_x 2\n")
        with pytest.raises(ValueError, match="duplicate TYPE"):
            parse_exposition("# TYPE repro_x gauge\n"
                             "# TYPE repro_x counter\n")

    def test_rejects_missing_trailing_newline_and_bad_values(self):
        with pytest.raises(ValueError, match="newline"):
            parse_exposition("# TYPE repro_x gauge\nrepro_x 1")
        with pytest.raises(ValueError, match="non-float"):
            parse_exposition("# TYPE repro_x gauge\nrepro_x one\n")

    def test_rejects_non_cumulative_histogram(self):
        text = ("# TYPE repro_h histogram\n"
                'repro_h_bucket{le="0.1"} 5\n'
                'repro_h_bucket{le="+Inf"} 3\n'
                "repro_h_sum 1.0\n"
                "repro_h_count 3\n")
        with pytest.raises(ValueError, match="not cumulative"):
            parse_exposition(text)

    def test_rejects_histogram_missing_inf_or_count_mismatch(self):
        with pytest.raises(ValueError, match=r"missing \+Inf"):
            parse_exposition("# TYPE repro_h histogram\n"
                             'repro_h_bucket{le="1"} 1\n'
                             "repro_h_sum 1.0\nrepro_h_count 1\n")
        with pytest.raises(ValueError, match="!= _count"):
            parse_exposition("# TYPE repro_h histogram\n"
                             'repro_h_bucket{le="+Inf"} 2\n'
                             "repro_h_sum 1.0\nrepro_h_count 3\n")

    def test_accepts_well_formed_families(self):
        text = ("# TYPE repro_up gauge\nrepro_up 1\n"
                "# TYPE repro_total counter\nrepro_total 7\n"
                "# TYPE repro_h histogram\n"
                'repro_h_bucket{le="0.5"} 2\n'
                'repro_h_bucket{le="+Inf"} 4\n'
                "repro_h_sum 3.25\nrepro_h_count 4\n")
        families = parse_exposition(text)
        assert families["repro_up"]["type"] == "gauge"
        assert families["repro_total"]["type"] == "counter"
        assert families["repro_h"]["type"] == "histogram"
