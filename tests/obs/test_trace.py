"""Unit tests for repro.obs.trace: span trees, the header codec, the
ring-buffer store, worker capture/absorb, and the exporters."""

import json
import threading

import pytest

from repro.obs import trace


def recorded_store():
    store = trace.TraceStore()
    trace.enable(store)
    return store


class TestSpanTree:
    def test_nested_spans_share_trace_and_parent_correctly(self):
        store = recorded_store()
        with trace.span("outer", kind="test") as outer:
            with trace.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        spans = store.get(outer.trace_id)
        assert [s["name"] for s in spans] == ["inner", "outer"]
        roots = [s for s in spans if s["parent_id"] is None]
        assert len(roots) == 1 and roots[0]["name"] == "outer"

    def test_span_records_timings_ids_and_attributes(self):
        store = recorded_store()
        with trace.span("work", rows=7) as handle:
            handle.set_attribute("extra", "yes")
        (record,) = store.get(handle.trace_id)
        assert len(record["trace_id"]) == 32
        assert len(record["span_id"]) == 16
        int(record["trace_id"], 16), int(record["span_id"], 16)
        assert record["wall_s"] >= 0 and record["cpu_s"] >= 0
        assert record["status"] == "ok"
        assert record["attributes"] == {"rows": 7, "extra": "yes"}

    def test_exception_marks_span_error_and_still_propagates(self):
        store = recorded_store()
        with pytest.raises(RuntimeError):
            with trace.span("boom") as handle:
                raise RuntimeError("kaput")
        (record,) = store.get(handle.trace_id)
        assert record["status"] == "error"
        assert record["error"] == "RuntimeError: kaput"

    def test_start_span_is_not_activated_but_parents_via_adopt(self):
        store = recorded_store()
        job_span = trace.start_span("service.job", job_id="j-1")
        # not activated: a sibling span opened now is NOT its child
        with trace.span("unrelated") as sibling:
            pass
        assert sibling.trace_id != job_span.trace_id
        with trace.adopt(job_span.context_payload()):
            with trace.span("child") as child:
                assert child.parent_id == job_span.span_id
        job_span.finish()
        names = {s["name"] for s in store.get(job_span.trace_id)}
        assert names == {"service.job", "child"}

    def test_finish_is_idempotent(self):
        store = recorded_store()
        handle = trace.span("once")
        handle.finish()
        handle.finish()
        assert len(store.get(handle.trace_id)) == 1

    def test_cross_thread_finish_does_not_raise(self):
        recorded_store()
        handle = trace.span("crossing")
        worker = threading.Thread(target=handle.finish)
        worker.start()
        worker.join()


class TestDisabledPath:
    def test_disabled_span_is_the_shared_noop(self):
        first = trace.span("a", key="value")
        second = trace.span("b")
        assert first is second
        with first as handle:
            handle.set_attribute("k", 1)
            handle.set_attributes(x=2)
        assert first.context_payload() is None
        assert trace.context_payload() is None
        assert trace.current_ids() == (None, None)
        assert trace.header_value() is None

    def test_absorb_and_adopt_are_noops_when_disabled(self):
        assert trace.absorb(None) == 0
        assert trace.absorb([{"trace_id": "x"}]) == 0
        with trace.adopt({"trace_id": "a" * 32, "span_id": "b" * 16}):
            assert trace.current_ids() == (None, None)


class TestHeaderCodec:
    def test_round_trip_through_header(self):
        recorded_store()
        with trace.span("root") as root:
            value = trace.header_value()
        parsed = trace.parse_header(value)
        assert parsed == {"trace_id": root.trace_id,
                          "span_id": root.span_id}

    @pytest.mark.parametrize("bad", [
        None, "", "garbage", "a-b", "x" * 32 + "-" + "y" * 16,
        "0" * 31 + "-" + "0" * 16, "0" * 32 + "-" + "0" * 15,
        "0" * 32, "0" * 32 + "-" + "0" * 16 + "-extra", 42,
    ])
    def test_malformed_headers_decode_to_none(self, bad):
        assert trace.parse_header(bad) is None

    def test_parse_normalizes_case(self):
        value = "A" * 32 + "-" + "B" * 16
        parsed = trace.parse_header(value)
        assert parsed == {"trace_id": "a" * 32, "span_id": "b" * 16}


class TestCaptureAbsorb:
    def test_worker_capture_ships_spans_parent_absorbs(self):
        # child-process side: recording starts disabled, capture() turns
        # it on into a plain list the worker ships back in its report
        assert not trace.enabled()
        shipped = []
        payload = {"trace_id": "c" * 32, "span_id": "d" * 16}
        with trace.capture(shipped):
            with trace.adopt(payload):
                with trace.span("stream.shard", chunks=3):
                    pass
        assert not trace.enabled()  # capture restored the previous state
        assert len(shipped) == 1
        assert shipped[0]["trace_id"] == "c" * 32
        assert shipped[0]["parent_id"] == "d" * 16
        # parent side: absorb re-records into the live store
        store = recorded_store()
        assert trace.absorb(shipped) == 1
        assert trace.absorb([{"no": "trace_id"}, None]) == 0
        assert [s["name"] for s in store.get("c" * 32)] == ["stream.shard"]


class TestTraceStore:
    def test_ring_evicts_oldest_trace(self):
        store = trace.TraceStore(max_traces=2)
        for index in range(3):
            store.add({"trace_id": f"{index:032x}", "span_id": "s",
                       "parent_id": None, "name": f"t{index}",
                       "start_s": float(index), "wall_s": 0.1})
        assert store.get(f"{0:032x}") is None
        assert store.trace_ids() == [f"{1:032x}", f"{2:032x}"]
        stats = store.stats_snapshot()
        assert stats["traces"] == 2 and stats["traces_evicted"] == 1

    def test_per_trace_span_cap_drops_overflow(self):
        store = trace.TraceStore(max_spans_per_trace=2)
        for index in range(4):
            store.add({"trace_id": "t" * 32, "name": f"s{index}",
                       "parent_id": None, "start_s": 0.0, "wall_s": 0.0})
        assert len(store.get("t" * 32)) == 2
        assert store.stats_snapshot()["spans_dropped"] == 2

    def test_summaries_report_root_and_wall(self):
        store = trace.TraceStore()
        store.add({"trace_id": "t" * 32, "span_id": "a", "parent_id": "r",
                   "name": "child", "start_s": 10.5, "wall_s": 0.5})
        store.add({"trace_id": "t" * 32, "span_id": "r",
                   "parent_id": None, "name": "root",
                   "start_s": 10.0, "wall_s": 2.0})
        (summary,) = store.summaries()
        assert summary["root"] == "root"
        assert summary["spans"] == 2
        assert summary["wall_s"] == pytest.approx(2.0)

    def test_unknown_trace_is_none_and_bad_records_ignored(self):
        store = trace.TraceStore()
        store.add({"trace_id": 7, "name": "bad"})
        assert store.get("missing") is None
        assert store.stats_snapshot()["spans"] == 0

    def test_bounds_validated(self):
        with pytest.raises(ValueError, match="max_traces"):
            trace.TraceStore(max_traces=0)
        with pytest.raises(ValueError, match="max_spans_per_trace"):
            trace.TraceStore(max_spans_per_trace=0)


class TestExporters:
    def _spans(self):
        store = recorded_store()
        with trace.span("outer") as outer:
            with trace.span("inner", rows=3):
                pass
        return store.get(outer.trace_id)

    def test_jsonl_one_record_per_line(self):
        spans = self._spans()
        lines = trace.to_jsonl(spans).splitlines()
        assert [json.loads(line)["name"] for line in lines] \
            == ["inner", "outer"]

    def test_chrome_trace_events_are_complete_and_sorted(self):
        spans = self._spans()
        document = trace.to_chrome_trace(spans)
        events = document["traceEvents"]
        assert len(events) == 2
        assert all(event["ph"] == "X" for event in events)
        assert all(event["dur"] >= 0 for event in events)
        keys = [(e["pid"], e["tid"], e["ts"]) for e in events]
        assert keys == sorted(keys)
        inner = next(e for e in events if e["name"] == "inner")
        assert inner["args"]["rows"] == 3
        assert inner["args"]["parent_id"] is not None
        json.dumps(document)  # must be JSON-serializable as-is


class TestAutoEnable:
    def test_env_opt_out(self, monkeypatch):
        monkeypatch.setenv(trace.OBS_ENV, "0")
        assert trace.auto_enable() is False
        assert not trace.enabled()
        monkeypatch.setenv(trace.OBS_ENV, "1")
        assert trace.auto_enable() is True
        assert trace.enabled()
