"""Unit tests for the commercial-HLS tool model (Section 4.3)."""

import pytest

from repro.baselines.commercial_hls import (
    CommercialHlsTool,
    HlsConfiguration,
    HlsStatus,
)
from repro.synth.fpga_device import VIRTEX6_XC6VLX760


@pytest.fixture(scope="module")
def tool(igf_kernel):
    return CommercialHlsTool(igf_kernel, VIRTEX6_XC6VLX760)


class TestDirectiveFailures:
    def test_loop_merge_fails_on_inter_iteration_dependencies(self, tool):
        result = tool.run(HlsConfiguration(loop_merge=True), 1024, 768, 10)
        assert result.status is HlsStatus.LOOP_MERGE_FAILED
        assert not result.succeeded
        assert "depend" in result.detail

    def test_pipeline_plus_flatten_exhausts_host_memory(self, tool):
        result = tool.run(HlsConfiguration(pipeline=True, loop_flatten=True,
                                           array_partition_factor=16),
                          1024, 768, 10)
        assert result.status is HlsStatus.OUT_OF_MEMORY
        assert "GB" in result.detail

    def test_pipeline_plus_flatten_ok_on_tiny_frames(self, tool):
        result = tool.run(HlsConfiguration(pipeline=True, loop_flatten=True),
                          64, 64, 4)
        assert result.succeeded


class TestFeasibleConfigurations:
    def test_unpipelined_baseline_is_very_slow(self, tool):
        result = tool.run(HlsConfiguration(), 1024, 768, 10)
        assert result.succeeded
        assert result.frames_per_second < 0.5

    def test_pipelining_and_partitioning_help(self, tool):
        slow = tool.run(HlsConfiguration(), 1024, 768, 10)
        fast = tool.run(HlsConfiguration(unroll_factor=8, pipeline=True,
                                         array_partition_factor=8), 1024, 768, 10)
        assert fast.frames_per_second > slow.frames_per_second

    def test_best_configuration_matches_paper_order_of_magnitude(self, tool):
        """The paper reports 0.14 fps for the best Vivado HLS configuration."""
        best = tool.best_configuration(1024, 768, 10)
        assert best.succeeded
        assert 0.02 < best.frames_per_second < 1.5

    def test_configuration_description(self):
        config = HlsConfiguration(unroll_factor=4, pipeline=True,
                                  array_partition_factor=2)
        text = config.describe()
        assert "unroll=4" in text and "pipeline" in text and "partition=2" in text


class TestAgainstConeFlow:
    def test_cone_flow_is_orders_of_magnitude_faster(self, tool, igf_kernel):
        """Headline claim of the paper: orders of magnitude over commercial HLS."""
        from repro.dse.explorer import DesignSpaceExplorer
        from repro.ir.operators import DataFormat

        explorer = DesignSpaceExplorer(igf_kernel, data_format=DataFormat.FIXED16,
                                       window_sides=(6, 8), max_depth=2,
                                       max_cones_per_depth=8)
        exploration = explorer.explore(10, 1024, 768)
        best_cone = exploration.best_fitting_point()
        best_hls = tool.best_configuration(1024, 768, 10)
        assert best_cone.frames_per_second > 100 * best_hls.frames_per_second
