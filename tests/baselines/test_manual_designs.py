"""Unit tests for the literature reference designs."""

import pytest

from repro.baselines.manual_designs import LITERATURE_DESIGNS, literature_design


def test_paper_comparison_points_present():
    assert "cope_convolution" in LITERATURE_DESIGNS
    assert "akin_chambolle" in LITERATURE_DESIGNS
    assert "paper_cone_igf" in LITERATURE_DESIGNS
    assert "paper_cone_chambolle" in LITERATURE_DESIGNS


def test_published_numbers_from_section_4():
    assert literature_design("cope_convolution").fps((1024, 768)) == 13.5
    assert literature_design("akin_chambolle").fps((1024, 768)) == 38.0
    assert literature_design("akin_chambolle").fps((512, 512)) == 99.0
    assert literature_design("paper_cone_igf").fps((1024, 768)) == 110.0
    assert literature_design("paper_cone_chambolle").fps((512, 512)) == 72.0


def test_unknown_lookup_raises():
    with pytest.raises(KeyError):
        literature_design("nonexistent")
    with pytest.raises(KeyError):
        literature_design("cope_convolution").fps((640, 480))


def test_paper_speedup_claims_are_encoded():
    """Section 4.1: the automatic flow beats the manual convolution design."""
    cope = literature_design("cope_convolution")
    ours = literature_design("paper_cone_igf")
    assert ours.fps((1024, 768)) > 5 * cope.fps((1024, 768))
    assert ours.fps((1920, 1080)) > 5 * cope.fps((1920, 1080))


def test_chambolle_comparison_is_same_order_of_magnitude():
    """Section 4.2: automatic results are comparable to the hand design."""
    manual = literature_design("akin_chambolle")
    ours = literature_design("paper_cone_chambolle")
    for frame in ((1024, 768), (512, 512)):
        ratio = ours.fps(frame) / manual.fps(frame)
        assert 0.3 < ratio < 1.5
