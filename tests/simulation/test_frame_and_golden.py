"""Unit tests for frames and the golden whole-frame executor."""

import numpy as np
import pytest

from repro.simulation.frame import Frame, FrameSet, make_test_frame
from repro.simulation.golden import GoldenExecutor


class TestFrame:
    def test_2d_data_promoted_to_single_component(self):
        frame = Frame("f", np.zeros((4, 5)))
        assert frame.shape == (1, 4, 5)
        assert frame.components == 1
        assert frame.height == 4 and frame.width == 5

    def test_invalid_rank_rejected(self):
        with pytest.raises(ValueError):
            Frame("f", np.zeros((2, 3, 4, 5)))

    def test_clamped_read(self):
        data = np.arange(12, dtype=float).reshape(3, 4)
        frame = Frame("f", data)
        assert frame.clamped_read(0, -5, -5) == data[0, 0]
        assert frame.clamped_read(0, 10, 10) == data[2, 3]
        assert frame.clamped_read(0, 1, 2) == data[1, 2]

    def test_padded_replicates_edges(self):
        frame = Frame("f", np.array([[1.0, 2.0], [3.0, 4.0]]))
        padded = frame.padded(1)
        assert padded.shape == (1, 4, 4)
        assert padded[0, 0, 0] == 1.0
        assert padded[0, 3, 3] == 4.0

    def test_copy_is_independent(self):
        frame = Frame("f", np.zeros((2, 2)))
        clone = frame.copy()
        clone.data[0, 0, 0] = 5.0
        assert frame.data[0, 0, 0] == 0.0

    # ------------------------------------------------------------------ #
    # edge-semantics regression: clamped_read and padded() must expose the
    # same boundary contract at EVERY radius, including radius >= the frame
    # dimensions (deep stencils over tiny frames) — the per-pixel oracle
    # paths read via clamped_read while the vectorized paths read padded
    # views, so any divergence here would silently break bit-identity.

    @pytest.mark.parametrize("height,width", [(1, 1), (1, 4), (3, 1), (2, 2)])
    @pytest.mark.parametrize("radius", [1, 2, 3, 5])
    def test_padded_agrees_with_clamped_read_everywhere(self, height, width,
                                                        radius):
        rng = np.random.default_rng(height * 10 + width)
        frame = Frame("f", rng.random((height, width)))
        padded = frame.padded(radius)
        assert padded.shape == (1, height + 2 * radius, width + 2 * radius)
        for y in range(-radius, height + radius):
            for x in range(-radius, width + radius):
                assert padded[0, radius + y, radius + x] \
                    == frame.clamped_read(0, y, x), (height, width, radius,
                                                     y, x)

    def test_clamp_at_border_on_1x1_frame(self):
        frame = Frame("f", np.array([[7.5]]))
        for y in (-9, 0, 9):
            for x in (-9, 0, 9):
                assert frame.clamped_read(0, y, x) == 7.5
        padded = frame.padded(4)
        assert np.all(padded == 7.5)

    def test_padded_radius_exceeding_dimensions_replicates_edge(self):
        frame = Frame("f", np.array([[1.0, 2.0, 3.0]]))  # 1x3 frame
        padded = frame.padded(5)  # radius > height AND > width
        assert padded.shape == (1, 11, 13)
        # the whole left pad band is the leftmost column, clamped
        assert np.all(padded[0, :, :6] == 1.0)
        assert np.all(padded[0, :, 7:] == 3.0)
        assert np.all(padded[0, :, 6] == 2.0)


class TestFrameSet:
    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            FrameSet([Frame("a", np.zeros((2, 2))), Frame("b", np.zeros((3, 3)))])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            FrameSet([Frame("a", np.zeros((2, 2))), Frame("a", np.zeros((2, 2)))])

    def test_for_kernel_builds_all_fields(self, chambolle_kernel):
        frames = FrameSet.for_kernel(chambolle_kernel, 8, 10, seed=1)
        assert set(frames.names()) == {"p", "g"}
        assert frames["p"].components == 2
        assert frames["g"].components == 1
        assert frames.height == 8 and frames.width == 10

    def test_for_kernel_accepts_initial_data(self, igf_kernel):
        initial = np.ones((4, 4))
        frames = FrameSet.for_kernel(igf_kernel, 4, 4, initial={"f": initial})
        assert np.allclose(frames["f"].data, 1.0)

    def test_for_kernel_rejects_wrong_component_count(self, chambolle_kernel):
        with pytest.raises(ValueError):
            FrameSet.for_kernel(chambolle_kernel, 4, 4, initial={"p": np.ones((4, 4))})

    def test_replace_checks_shape(self, igf_kernel):
        frames = FrameSet.for_kernel(igf_kernel, 4, 4)
        with pytest.raises(ValueError):
            frames.replace("f", np.zeros((1, 5, 5)))

    def test_make_test_frame_is_deterministic(self):
        a = make_test_frame(8, 8, rng=np.random.default_rng(7))
        b = make_test_frame(8, 8, rng=np.random.default_rng(7))
        assert np.array_equal(a, b)


class TestGoldenExecutor:
    def test_uniform_frame_is_blur_fixed_point(self, igf_kernel):
        """A constant frame is a fixed point of the (normalised) Gaussian blur."""
        frames = FrameSet.for_kernel(igf_kernel, 6, 6,
                                     initial={"f": np.full((6, 6), 3.0)})
        result = GoldenExecutor(igf_kernel).run(frames, 5)
        assert np.allclose(result["f"].data, 3.0)

    def test_blur_matches_manual_convolution_in_interior(self, igf_kernel):
        rng = np.random.default_rng(0)
        data = rng.random((7, 7))
        frames = FrameSet.for_kernel(igf_kernel, 7, 7, initial={"f": data})
        result = GoldenExecutor(igf_kernel).step(frames)["f"].data[0]
        kernel = np.array([[0.0625, 0.125, 0.0625],
                           [0.125, 0.25, 0.125],
                           [0.0625, 0.125, 0.0625]])
        y, x = 3, 3
        expected = float((data[y - 1:y + 2, x - 1:x + 2] * kernel).sum())
        assert result[y, x] == pytest.approx(expected)

    def test_zero_iterations_is_identity(self, igf_kernel):
        frames = FrameSet.for_kernel(igf_kernel, 5, 5, seed=2)
        result = GoldenExecutor(igf_kernel).run(frames, 0)
        assert np.array_equal(result["f"].data, frames["f"].data)

    def test_negative_iterations_rejected(self, igf_kernel):
        frames = FrameSet.for_kernel(igf_kernel, 5, 5)
        with pytest.raises(ValueError):
            GoldenExecutor(igf_kernel).run(frames, -1)

    def test_blur_smooths_variance(self, igf_kernel):
        frames = FrameSet.for_kernel(igf_kernel, 32, 32, seed=5)
        result = GoldenExecutor(igf_kernel).run(frames, 8)
        assert result["f"].data.var() < frames["f"].data.var()

    def test_readonly_field_is_untouched(self, chambolle_kernel):
        frames = FrameSet.for_kernel(chambolle_kernel, 10, 10, seed=3)
        original_g = frames["g"].data.copy()
        result = GoldenExecutor(chambolle_kernel).run(frames, 4)
        assert np.array_equal(result["g"].data, original_g)
        assert not np.array_equal(result["p"].data, frames["p"].data)

    def test_chambolle_dual_variable_stays_bounded(self, chambolle_kernel):
        """Chambolle's projection keeps the dual field bounded (soft check)."""
        frames = FrameSet.for_kernel(chambolle_kernel, 16, 16, seed=4)
        result = GoldenExecutor(chambolle_kernel).run(frames, 20)
        assert np.all(np.abs(result["p"].data) < 50.0)

    def test_parameter_override_changes_result(self, chambolle_kernel):
        frames = FrameSet.for_kernel(chambolle_kernel, 8, 8, seed=6)
        default = GoldenExecutor(chambolle_kernel).step(frames)
        slower = GoldenExecutor(chambolle_kernel, params={"tau": 0.05}).step(frames)
        assert not np.allclose(default["p"].data, slower["p"].data)

    def test_heat_equation_conserves_and_decays(self, heat_kernel):
        frames = FrameSet.for_kernel(heat_kernel, 16, 16, seed=8)
        result = GoldenExecutor(heat_kernel).run(frames, 10)
        assert result["t"].data.max() <= frames["t"].data.max() + 1e-9
        assert result["t"].data.min() >= frames["t"].data.min() - 1e-9

    def test_erosion_never_increases_values(self, erosion_kernel):
        frames = FrameSet.for_kernel(erosion_kernel, 12, 12, seed=9)
        result = GoldenExecutor(erosion_kernel).run(frames, 3)
        assert np.all(result["f"].data <= frames["f"].data + 1e-12)

    # ------------------------------------------------------------------ #
    # degenerate-shape regression: frames no larger than the stencil radius
    # exercise the clamp-everywhere corner of the boundary contract, where
    # the vectorized padded-view path and the scalar clamped_read path must
    # still agree bit-for-bit.

    @pytest.mark.parametrize("height,width", [(1, 1), (1, 5), (4, 1)])
    def test_vectorized_matches_scalar_on_degenerate_frames(self, igf_kernel,
                                                            height, width):
        frames = FrameSet.for_kernel(igf_kernel, height, width, seed=11)
        executor = GoldenExecutor(igf_kernel)
        fast = executor.run(frames, 3)
        slow = executor.run_scalar(frames, 3)
        assert np.array_equal(fast["f"].data, slow["f"].data)

    def test_multi_field_vectorized_matches_scalar_on_1x1(self,
                                                          chambolle_kernel):
        frames = FrameSet.for_kernel(chambolle_kernel, 1, 1, seed=12)
        executor = GoldenExecutor(chambolle_kernel)
        fast = executor.run(frames, 4)
        slow = executor.run_scalar(frames, 4)
        for name in frames.names():
            assert np.array_equal(fast[name].data, slow[name].data), name

    def test_blur_on_1x1_frame_is_identity(self, igf_kernel):
        """All nine taps clamp to the single pixel; a normalised blur of a
        single pixel must therefore return that pixel's own value."""
        frames = FrameSet.for_kernel(igf_kernel, 1, 1,
                                     initial={"f": np.array([[2.5]])})
        result = GoldenExecutor(igf_kernel).run(frames, 3)
        assert result["f"].data[0, 0, 0] == pytest.approx(2.5)
