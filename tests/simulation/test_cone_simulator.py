"""Unit tests for the functional cone simulator and the cycle-level simulator."""

import numpy as np
import pytest

from repro.architecture.template import ConeArchitecture
from repro.estimation.throughput_model import ConePerformance, ThroughputModel
from repro.ir.operators import DataFormat
from repro.simulation.cone_simulator import (
    FunctionalConeSimulator,
    TileCascadeCycleSimulator,
)
from repro.simulation.frame import FrameSet
from repro.simulation.golden import GoldenExecutor
from repro.synth.fpga_device import VIRTEX6_XC6VLX760


def interior(array, margin):
    return array[..., margin:-margin, margin:-margin]


class TestFunctionalSimulator:
    @pytest.mark.parametrize("window,iterations", [(2, 1), (3, 2), (4, 3)])
    def test_expression_mode_matches_golden_interior(self, igf_kernel, window, iterations):
        frames = FrameSet.for_kernel(igf_kernel, 18, 18, seed=11)
        golden = GoldenExecutor(igf_kernel).run(frames, iterations)
        simulated = FunctionalConeSimulator(igf_kernel).run(
            frames, iterations, window, mode="expression")
        margin = iterations + 1
        np.testing.assert_allclose(
            interior(simulated["f"].data, margin),
            interior(golden["f"].data, margin), rtol=1e-9, atol=1e-12)

    def test_region_mode_matches_golden_interior(self, igf_kernel):
        frames = FrameSet.for_kernel(igf_kernel, 24, 20, seed=12)
        golden = GoldenExecutor(igf_kernel).run(frames, 4)
        simulated = FunctionalConeSimulator(igf_kernel).run(
            frames, 4, window_side=5, mode="region")
        margin = 5
        np.testing.assert_allclose(
            interior(simulated["f"].data, margin),
            interior(golden["f"].data, margin), rtol=1e-9, atol=1e-12)

    def test_chambolle_expression_mode_matches_golden(self, chambolle_kernel):
        frames = FrameSet.for_kernel(chambolle_kernel, 14, 14, seed=13)
        golden = GoldenExecutor(chambolle_kernel).run(frames, 2)
        simulated = FunctionalConeSimulator(chambolle_kernel).run(
            frames, 2, window_side=2, mode="expression")
        margin = 3
        np.testing.assert_allclose(
            interior(simulated["p"].data, margin),
            interior(golden["p"].data, margin), rtol=1e-9, atol=1e-12)

    def test_non_divisible_frame_sizes_are_handled(self, igf_kernel):
        frames = FrameSet.for_kernel(igf_kernel, 13, 11, seed=14)
        simulated = FunctionalConeSimulator(igf_kernel).run(
            frames, 2, window_side=4, mode="region")
        assert simulated["f"].data.shape == frames["f"].data.shape

    def test_invalid_mode_rejected(self, igf_kernel):
        frames = FrameSet.for_kernel(igf_kernel, 8, 8)
        with pytest.raises(ValueError):
            FunctionalConeSimulator(igf_kernel).run(frames, 1, 2, mode="magic")

    def test_cone_cache_reused(self, igf_kernel):
        simulator = FunctionalConeSimulator(igf_kernel)
        frames = FrameSet.for_kernel(igf_kernel, 8, 8)
        simulator.run(frames, 2, 2, mode="expression")
        first = dict(simulator._cone_cache)
        simulator.run(frames, 2, 2, mode="expression")
        assert simulator._cone_cache[(2, 2)] is first[(2, 2)]


class TestCycleSimulator:
    def make_architecture(self, window=4, depths=(2, 2), counts=None):
        counts = counts or {2: 2}
        return ConeArchitecture(kernel_name="blur", window_side=window,
                                level_depths=list(depths), cone_counts=counts,
                                radius=1)

    def cone_performance(self, architecture, latency=4):
        return {d: ConePerformance(d, architecture.window_side, latency)
                for d in architecture.distinct_depths}

    def test_cycle_simulation_matches_analytic_model(self):
        """The transaction-level simulator and the throughput model must agree."""
        architecture = self.make_architecture()
        performance = self.cone_performance(architecture)
        model = ThroughputModel(VIRTEX6_XC6VLX760, DataFormat.FIXED32)
        simulator = TileCascadeCycleSimulator(VIRTEX6_XC6VLX760, bytes_per_element=4)
        analytic = model.evaluate(architecture, performance, 256, 192)
        simulated = simulator.simulate_frame(architecture, performance, 256, 192)
        assert simulated.tiles == analytic.tiles_per_frame
        assert simulated.seconds_per_frame == pytest.approx(
            analytic.seconds_per_frame, rel=0.02)

    def test_offchip_traffic_matches_tile_geometry(self):
        architecture = self.make_architecture()
        simulator = TileCascadeCycleSimulator(VIRTEX6_XC6VLX760, bytes_per_element=4)
        result = simulator.simulate_frame(
            architecture, self.cone_performance(architecture), 64, 64)
        read, written = architecture.offchip_elements_per_tile()
        assert result.offchip_bytes == result.tiles * (read + written) * 4

    def test_onchip_footprint_fits_device(self):
        architecture = self.make_architecture(window=8)
        simulator = TileCascadeCycleSimulator(VIRTEX6_XC6VLX760)
        result = simulator.simulate_frame(
            architecture, self.cone_performance(architecture), 128, 128)
        assert result.onchip_peak_bytes < VIRTEX6_XC6VLX760.onchip_memory_bytes

    def test_more_instances_run_faster(self):
        single = self.make_architecture(counts={2: 1})
        quad = self.make_architecture(counts={2: 4})
        simulator = TileCascadeCycleSimulator(VIRTEX6_XC6VLX760)
        slow = simulator.simulate_frame(single, self.cone_performance(single), 128, 128)
        fast = simulator.simulate_frame(quad, self.cone_performance(quad), 128, 128)
        assert fast.frames_per_second > slow.frames_per_second
