"""Unit tests for the memory hierarchy models."""

import pytest

from repro.simulation.memory import OffChipMemoryModel, OnChipBufferModel
from repro.synth.fpga_device import VIRTEX6_XC6VLX760


class TestOffChipMemory:
    def test_transfer_accounting(self):
        memory = OffChipMemoryModel(VIRTEX6_XC6VLX760, bytes_per_element=4)
        record = memory.transfer(1000, "tile load")
        assert record.bytes == 4000
        assert record.cycles == pytest.approx(4000 / memory.bytes_per_cycle)
        memory.transfer(500)
        assert memory.total_bytes == 6000
        assert memory.total_cycles > record.cycles
        memory.reset()
        assert memory.total_bytes == 0

    def test_bytes_per_cycle_derived_from_device(self):
        memory = OffChipMemoryModel(VIRTEX6_XC6VLX760)
        expected = (VIRTEX6_XC6VLX760.offchip_bandwidth_bytes_per_s
                    / VIRTEX6_XC6VLX760.typical_clock_hz)
        assert memory.bytes_per_cycle == pytest.approx(expected)


class TestOnChipBuffer:
    def test_access_cycles_rounding(self):
        buffer = OnChipBufferModel(capacity_bytes=1 << 20, elements_per_cycle=16)
        assert buffer.access_cycles(0) == 0
        assert buffer.access_cycles(16) == 1
        assert buffer.access_cycles(17) == 2

    def test_occupancy_tracking_and_overflow(self):
        buffer = OnChipBufferModel(capacity_bytes=1000, bytes_per_element=4)
        buffer.occupy(100)
        assert buffer.peak_occupancy_bytes == 400
        assert buffer.fits
        with pytest.raises(MemoryError):
            buffer.occupy(300)
        assert buffer.peak_occupancy_bytes == 1200
        assert not buffer.fits
