"""Unit tests for the two-frame-buffer baseline architecture."""

import pytest

from repro.ir.operators import DataFormat
from repro.simulation.framebuffer_baseline import FrameBufferArchitecture
from repro.synth.fpga_device import VIRTEX2P_XC2VP30, VIRTEX6_XC6VLX760


def test_large_frames_do_not_fit_onchip(igf_kernel):
    baseline = FrameBufferArchitecture(igf_kernel, VIRTEX6_XC6VLX760)
    report = baseline.evaluate(1024, 768, iterations=10)
    assert not report.frame_fits_onchip
    assert report.onchip_bytes_required > VIRTEX6_XC6VLX760.onchip_memory_bytes


def test_small_frames_fit_onchip_and_avoid_per_iteration_traffic(igf_kernel):
    baseline = FrameBufferArchitecture(igf_kernel, VIRTEX6_XC6VLX760)
    small = baseline.evaluate(256, 256, iterations=10)
    assert small.frame_fits_onchip
    large = baseline.evaluate(1024, 768, iterations=10)
    # when the frame spills off chip, traffic scales with the iteration count
    assert large.offchip_bytes_per_frame > 5 * small.offchip_bytes_per_frame


def test_memory_performance_conflict(igf_kernel):
    """Section 2.2: when the frame spills off-chip the baseline becomes
    transfer-bound and the frame time grows with the iteration count."""
    baseline = FrameBufferArchitecture(igf_kernel, VIRTEX6_XC6VLX760)
    few = baseline.evaluate(1024, 768, iterations=2)
    many = baseline.evaluate(1024, 768, iterations=20)
    assert many.seconds_per_frame > 5 * few.seconds_per_frame


def test_wider_datapath_helps_compute_bound_case(igf_kernel):
    narrow = FrameBufferArchitecture(igf_kernel, VIRTEX6_XC6VLX760, pixels_per_cycle=1)
    wide = FrameBufferArchitecture(igf_kernel, VIRTEX6_XC6VLX760, pixels_per_cycle=4)
    assert wide.evaluate(256, 256, 10).frames_per_second >= \
        narrow.evaluate(256, 256, 10).frames_per_second


def test_chambolle_needs_more_onchip_memory_than_igf(igf_kernel, chambolle_kernel):
    igf = FrameBufferArchitecture(igf_kernel, VIRTEX6_XC6VLX760)
    chamb = FrameBufferArchitecture(chambolle_kernel, VIRTEX6_XC6VLX760)
    assert chamb.evaluate(512, 512, 5).onchip_bytes_required > \
        igf.evaluate(512, 512, 5).onchip_bytes_required


def test_older_device_is_slower(igf_kernel):
    new = FrameBufferArchitecture(igf_kernel, VIRTEX6_XC6VLX760)
    old = FrameBufferArchitecture(igf_kernel, VIRTEX2P_XC2VP30)
    assert old.evaluate(1024, 768, 10).frames_per_second < \
        new.evaluate(1024, 768, 10).frames_per_second


def test_report_fields_consistent(igf_kernel):
    report = FrameBufferArchitecture(igf_kernel, VIRTEX6_XC6VLX760).evaluate(640, 480, 8)
    assert report.frames_per_second == pytest.approx(1.0 / report.seconds_per_frame)
    assert report.kernel_name == "blur"
    assert report.iterations == 8
