"""Unit tests for the FPGA device models."""

import pytest

from repro.ir.operators import ResourceVector
from repro.synth.fpga_device import (
    DEVICE_CATALOG,
    VIRTEX2P_XC2VP30,
    VIRTEX6_XC6VLX760,
    device_by_name,
)


def test_catalog_contains_paper_devices():
    assert "XC6VLX760" in DEVICE_CATALOG
    assert "XC2VP30" in DEVICE_CATALOG


def test_device_lookup_case_insensitive():
    assert device_by_name("xc6vlx760") is VIRTEX6_XC6VLX760
    with pytest.raises(KeyError):
        device_by_name("XC7Z020")


def test_virtex6_is_much_larger_than_virtex2pro():
    assert VIRTEX6_XC6VLX760.slice_luts > 10 * VIRTEX2P_XC2VP30.slice_luts
    assert (VIRTEX6_XC6VLX760.onchip_memory_bytes
            > VIRTEX2P_XC2VP30.onchip_memory_bytes)


def test_capacity_vector_and_usable_fraction():
    device = VIRTEX6_XC6VLX760
    assert device.capacity.luts == device.slice_luts
    assert device.usable_capacity.luts == pytest.approx(
        device.slice_luts * device.usable_fraction)


def test_paper_clock_frequency():
    """The design-space tables of the paper run the Virtex-6 at 97.16 MHz."""
    assert VIRTEX6_XC6VLX760.typical_clock_hz == pytest.approx(97.16e6, rel=1e-3)


def test_max_instances():
    device = VIRTEX6_XC6VLX760
    unit = ResourceVector(luts=100_000, ffs=10_000)
    assert device.max_instances(unit) == 4
    tiny = ResourceVector(luts=1)
    assert device.max_instances(tiny) > 100_000
    assert device.max_instances(ResourceVector()) == 0


def test_onchip_memory_too_small_for_a_1024x768_frame():
    """The premise of the paper: whole frames do not fit in on-chip memory."""
    frame_bytes = 1024 * 768 * 4
    assert VIRTEX6_XC6VLX760.onchip_memory_bytes < 2 * frame_bytes
    assert VIRTEX2P_XC2VP30.onchip_memory_bytes < frame_bytes
