"""Unit tests for technology mapping, logic reuse and the synthesis simulator."""

import pytest

from repro.ir.dfg import build_dfg_from_cone
from repro.ir.operators import DataFormat, default_library
from repro.symbolic.cone_expression import ConeExpressionBuilder
from repro.synth.fpga_device import VIRTEX6_XC6VLX760, VIRTEX2P_XC2VP30
from repro.synth.logic_reuse import LogicReuseModel, _deterministic_ripple
from repro.synth.synthesizer import Synthesizer
from repro.synth.technology_map import TechnologyMapper
from repro.synth.timing import TimingModel


@pytest.fixture(scope="module")
def igf_cone_graphs(igf_kernel):
    builder = ConeExpressionBuilder(igf_kernel)
    return {(w, d): build_dfg_from_cone(builder.build(w, d))
            for w, d in [(1, 1), (2, 1), (3, 1), (2, 2), (3, 2)]}


class TestTechnologyMapper:
    def test_mapping_accounts_every_operation(self, igf_cone_graphs):
        mapper = TechnologyMapper(default_library(DataFormat.FIXED16))
        graph = igf_cone_graphs[(2, 2)]
        mapped = mapper.map(graph)
        assert mapped.operation_count == graph.operation_count()
        assert mapped.register_count == graph.register_count
        assert mapped.operation_resources.luts > 0
        assert mapped.total.luts > mapped.operation_resources.luts

    def test_pipeline_registers_add_area(self, igf_cone_graphs):
        mapper = TechnologyMapper(default_library(DataFormat.FIXED16))
        graph = igf_cone_graphs[(2, 2)]
        without = mapper.map(graph, pipeline_register_count=0)
        with_regs = mapper.map(graph, pipeline_register_count=100)
        assert with_regs.total.luts > without.total.luts
        assert with_regs.register_count == without.register_count + 100

    def test_bigger_cone_maps_to_more_area(self, igf_cone_graphs):
        mapper = TechnologyMapper(default_library(DataFormat.FIXED16))
        small = mapper.map(igf_cone_graphs[(1, 1)])
        large = mapper.map(igf_cone_graphs[(3, 2)])
        assert large.total.luts > 10 * small.total.luts


class TestLogicReuse:
    def test_ripple_is_deterministic_and_bounded(self):
        a = _deterministic_ripple("design_a", 0.03)
        assert a == _deterministic_ripple("design_a", 0.03)
        assert 0.97 <= a <= 1.03
        assert _deterministic_ripple("design_b", 0.03) != a

    def test_sharing_factor_saturates(self):
        model = LogicReuseModel()
        assert model.sharing_factor(0) == 0.0
        small = model.sharing_factor(5_000)
        large = model.sharing_factor(500_000)
        assert 0 < small < large <= model.max_logic_sharing

    def test_optimize_reduces_area(self, igf_cone_graphs):
        mapper = TechnologyMapper(default_library(DataFormat.FIXED16))
        mapped = mapper.map(igf_cone_graphs[(3, 2)])
        optimized = LogicReuseModel().optimize(mapped)
        assert optimized.luts < mapped.total.luts
        assert optimized.dsps == mapped.total.dsps


class TestSynthesizer:
    def test_report_fields(self, igf_cone_graphs):
        synthesizer = Synthesizer(VIRTEX6_XC6VLX760,
                                  default_library(DataFormat.FIXED16))
        report = synthesizer.synthesize(igf_cone_graphs[(2, 2)])
        assert report.area.luts > 0
        assert report.area.luts < report.raw_area.luts
        assert report.register_count > 0
        assert report.timing.latency_cycles >= 1
        assert report.timing.achieved_frequency_hz <= VIRTEX6_XC6VLX760.typical_clock_hz
        assert report.estimated_tool_runtime_s > 0
        assert report.fits

    def test_synthesis_is_deterministic(self, igf_cone_graphs):
        synthesizer = Synthesizer(VIRTEX6_XC6VLX760,
                                  default_library(DataFormat.FIXED16))
        first = synthesizer.synthesize(igf_cone_graphs[(3, 2)])
        second = synthesizer.synthesize(igf_cone_graphs[(3, 2)])
        assert first.area.luts == second.area.luts

    def test_run_counter_and_runtime_accumulate(self, igf_cone_graphs):
        synthesizer = Synthesizer(VIRTEX6_XC6VLX760,
                                  default_library(DataFormat.FIXED16))
        synthesizer.synthesize(igf_cone_graphs[(1, 1)])
        synthesizer.synthesize(igf_cone_graphs[(2, 1)])
        assert synthesizer.runs == 2
        assert synthesizer.total_tool_runtime_s > 0

    def test_area_grows_with_register_count(self, igf_cone_graphs):
        synthesizer = Synthesizer(VIRTEX6_XC6VLX760,
                                  default_library(DataFormat.FIXED16))
        reports = [synthesizer.synthesize(igf_cone_graphs[key])
                   for key in [(1, 1), (2, 1), (3, 1)]]
        areas = [r.area.luts for r in reports]
        registers = [r.register_count for r in reports]
        assert areas == sorted(areas)
        assert registers == sorted(registers)

    def test_max_parallel_instances(self, igf_cone_graphs):
        synthesizer = Synthesizer(VIRTEX6_XC6VLX760,
                                  default_library(DataFormat.FIXED16))
        small = synthesizer.synthesize(igf_cone_graphs[(1, 1)])
        large = synthesizer.synthesize(igf_cone_graphs[(3, 2)])
        assert synthesizer.max_parallel_instances(small) > \
            synthesizer.max_parallel_instances(large)

    def test_small_device_fits_fewer_cones(self, igf_cone_graphs):
        big_dev = Synthesizer(VIRTEX6_XC6VLX760, default_library(DataFormat.FIXED16))
        small_dev = Synthesizer(VIRTEX2P_XC2VP30, default_library(DataFormat.FIXED16))
        graph = igf_cone_graphs[(3, 2)]
        assert (small_dev.max_parallel_instances(small_dev.synthesize(graph))
                < big_dev.max_parallel_instances(big_dev.synthesize(graph)))


class TestTimingModel:
    def test_latency_seconds_consistent(self, igf_cone_graphs):
        model = TimingModel(VIRTEX6_XC6VLX760, default_library(DataFormat.FIXED16))
        report = model.analyze(igf_cone_graphs[(2, 2)])
        assert report.latency_seconds == pytest.approx(
            report.latency_cycles / report.achieved_frequency_hz)
        assert report.critical_path_ns > 0
        assert report.initiation_interval == 1

    def test_target_period_matches_device_clock(self):
        model = TimingModel(VIRTEX6_XC6VLX760)
        assert model.target_period_ns == pytest.approx(
            1e9 / VIRTEX6_XC6VLX760.typical_clock_hz)
