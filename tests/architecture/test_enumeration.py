"""Unit tests for architecture-space enumeration."""

import pytest

from repro.architecture.enumeration import (
    TABLE_CACHE_CAPACITY,
    ArchitectureSpace,
    _space_table_cached,
    count_level_splits,
    enumerate_architectures,
    enumerate_level_splits,
    single_depth_split,
    space_table,
)


class TestSingleDepthSplit:
    def test_exact_divisor(self):
        assert single_depth_split(10, 5) == [5, 5]
        assert single_depth_split(10, 2) == [2, 2, 2, 2, 2]
        assert single_depth_split(10, 1) == [1] * 10

    def test_remainder_level_added(self):
        """Non-divisor depths need an extra smaller level (Figure 7 discussion)."""
        assert single_depth_split(10, 3) == [3, 3, 3, 1]
        assert single_depth_split(10, 4) == [4, 4, 2]

    def test_depth_larger_than_total(self):
        assert single_depth_split(3, 5) == [3]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            single_depth_split(0, 1)
        with pytest.raises(ValueError):
            single_depth_split(5, 0)


class TestLevelSplits:
    def test_uniform_splits_cover_each_depth(self):
        splits = enumerate_level_splits(10, max_depth=5)
        assert [5, 5] in splits
        assert [3, 3, 3, 1] in splits
        assert len(splits) == 5

    def test_non_uniform_enumeration_is_complete_for_small_counts(self):
        splits = enumerate_level_splits(3, uniform_only=False)
        assert sorted(splits) == sorted([[1, 1, 1], [1, 2], [2, 1], [3]])

    def test_max_depth_respected(self):
        for split in enumerate_level_splits(10, max_depth=3):
            assert max(split) <= 3


class TestArchitectureSpace:
    def make_space(self, **overrides):
        kwargs = dict(kernel_name="blur", total_iterations=10, radius=1,
                      window_sides=(2, 4), max_depth=3, max_cones_per_depth=4)
        kwargs.update(overrides)
        return ArchitectureSpace(**kwargs)

    def test_distinct_shapes(self):
        space = self.make_space()
        shapes = space.distinct_shapes()
        assert (2, 1) in shapes and (4, 3) in shapes
        assert all(depth <= 3 for _, depth in shapes)

    def test_architecture_count_matches_size(self):
        space = self.make_space()
        architectures = list(space.architectures())
        assert len(architectures) == space.size()

    def test_every_architecture_is_feasible_and_right_iterations(self):
        for architecture in self.make_space().architectures():
            assert architecture.total_iterations == 10
            architecture.validate()

    def test_primary_depth_scales_with_count_choice(self):
        space = self.make_space()
        architectures = list(space.architectures(cone_count_choices=[3]))
        for architecture in architectures:
            primary = max(architecture.distinct_depths)
            assert architecture.cone_counts[primary] == 3

    def test_convenience_wrapper(self):
        architectures = enumerate_architectures("blur", 6, radius=1,
                                                window_sides=(3,), max_depth=2,
                                                max_cones_per_depth=2)
        assert all(a.window_side == 3 for a in architectures)
        assert len(architectures) == 4


class TestCountLevelSplits:
    """O(1)/DP counting must agree with the materializing enumeration."""

    @pytest.mark.parametrize("uniform_only", [True, False])
    def test_matches_enumeration(self, uniform_only):
        for total in range(1, 9):
            for max_depth in [None] + list(range(1, total + 2)):
                expected = len(enumerate_level_splits(
                    total, max_depth, uniform_only))
                assert count_level_splits(
                    total, max_depth, uniform_only) == expected

    def test_counts_a_space_too_large_to_enumerate(self):
        # 10^4 compositions would be fine, 10 iterations uniform is 10;
        # the point is that huge uniform spaces stay O(1).
        assert count_level_splits(10**6, max_depth=5) == 5
        assert count_level_splits(10**6) == 10**6

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            count_level_splits(0)


class TestConstantTimeSize:
    def make_space(self, **overrides):
        kwargs = dict(kernel_name="blur", total_iterations=10, radius=1,
                      window_sides=(2, 4), max_depth=3, max_cones_per_depth=4)
        kwargs.update(overrides)
        return ArchitectureSpace(**kwargs)

    def test_size_matches_enumeration_across_knobs(self):
        for max_depth in (1, 3, None):
            for uniform in (True, False) if max_depth == 3 else (True,):
                space = self.make_space(max_depth=max_depth,
                                        uniform_levels_only=uniform)
                assert space.size() == len(list(space.architectures()))

    def test_size_with_count_choices(self):
        space = self.make_space()
        choices = [1, 3]
        assert space.size(choices) == len(
            list(space.architectures(cone_count_choices=choices)))

    def test_million_candidate_size_without_materialization(self):
        space = self.make_space(window_sides=tuple(range(1, 10)),
                                max_depth=5, max_cones_per_depth=23_000)
        assert space.size() == 9 * 5 * 23_000  # > 10^6, computed instantly


class TestBoundedTableCache:
    def setup_method(self):
        _space_table_cached.cache_clear()

    def teardown_method(self):
        _space_table_cached.cache_clear()

    def make_space(self, iterations):
        return ArchitectureSpace(kernel_name="blur",
                                 total_iterations=iterations, radius=1,
                                 window_sides=(2,), max_depth=2,
                                 max_cones_per_depth=2)

    def test_hits_and_misses_are_counted(self):
        space = self.make_space(6)
        first = space_table(space)
        second = space_table(space)
        assert first is second
        info = _space_table_cached.cache_info()
        assert info.hits == 1 and info.misses == 1 and info.currsize == 1
        assert info.maxsize == TABLE_CACHE_CAPACITY

    def test_capacity_is_enforced_with_lru_eviction(self):
        tables = [space_table(self.make_space(i))
                  for i in range(2, TABLE_CACHE_CAPACITY + 3)]
        info = _space_table_cached.cache_info()
        assert info.currsize == TABLE_CACHE_CAPACITY
        assert _space_table_cached.evictions == len(tables) - TABLE_CACHE_CAPACITY
        # the oldest entry was evicted: re-requesting it is a miss...
        misses_before = info.misses
        rebuilt = space_table(self.make_space(2))
        assert _space_table_cached.cache_info().misses == misses_before + 1
        assert rebuilt is not tables[0]
        # ...while the newest is still a hit
        assert space_table(self.make_space(TABLE_CACHE_CAPACITY + 2)) is tables[-1]

    def test_recent_use_protects_an_entry(self):
        keep = space_table(self.make_space(2))
        for i in range(3, TABLE_CACHE_CAPACITY + 2):
            space_table(self.make_space(i))
        space_table(self.make_space(2))           # refresh recency
        space_table(self.make_space(TABLE_CACHE_CAPACITY + 2))  # evicts i=3
        assert space_table(self.make_space(2)) is keep

    def test_clear_resets_counters(self):
        space_table(self.make_space(6))
        _space_table_cached.cache_clear()
        info = _space_table_cached.cache_info()
        assert (info.hits, info.misses, info.currsize) == (0, 0, 0)
        assert _space_table_cached.evictions == 0
