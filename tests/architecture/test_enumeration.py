"""Unit tests for architecture-space enumeration."""

import pytest

from repro.architecture.enumeration import (
    ArchitectureSpace,
    enumerate_architectures,
    enumerate_level_splits,
    single_depth_split,
)


class TestSingleDepthSplit:
    def test_exact_divisor(self):
        assert single_depth_split(10, 5) == [5, 5]
        assert single_depth_split(10, 2) == [2, 2, 2, 2, 2]
        assert single_depth_split(10, 1) == [1] * 10

    def test_remainder_level_added(self):
        """Non-divisor depths need an extra smaller level (Figure 7 discussion)."""
        assert single_depth_split(10, 3) == [3, 3, 3, 1]
        assert single_depth_split(10, 4) == [4, 4, 2]

    def test_depth_larger_than_total(self):
        assert single_depth_split(3, 5) == [3]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            single_depth_split(0, 1)
        with pytest.raises(ValueError):
            single_depth_split(5, 0)


class TestLevelSplits:
    def test_uniform_splits_cover_each_depth(self):
        splits = enumerate_level_splits(10, max_depth=5)
        assert [5, 5] in splits
        assert [3, 3, 3, 1] in splits
        assert len(splits) == 5

    def test_non_uniform_enumeration_is_complete_for_small_counts(self):
        splits = enumerate_level_splits(3, uniform_only=False)
        assert sorted(splits) == sorted([[1, 1, 1], [1, 2], [2, 1], [3]])

    def test_max_depth_respected(self):
        for split in enumerate_level_splits(10, max_depth=3):
            assert max(split) <= 3


class TestArchitectureSpace:
    def make_space(self, **overrides):
        kwargs = dict(kernel_name="blur", total_iterations=10, radius=1,
                      window_sides=(2, 4), max_depth=3, max_cones_per_depth=4)
        kwargs.update(overrides)
        return ArchitectureSpace(**kwargs)

    def test_distinct_shapes(self):
        space = self.make_space()
        shapes = space.distinct_shapes()
        assert (2, 1) in shapes and (4, 3) in shapes
        assert all(depth <= 3 for _, depth in shapes)

    def test_architecture_count_matches_size(self):
        space = self.make_space()
        architectures = list(space.architectures())
        assert len(architectures) == space.size()

    def test_every_architecture_is_feasible_and_right_iterations(self):
        for architecture in self.make_space().architectures():
            assert architecture.total_iterations == 10
            architecture.validate()

    def test_primary_depth_scales_with_count_choice(self):
        space = self.make_space()
        architectures = list(space.architectures(cone_count_choices=[3]))
        for architecture in architectures:
            primary = max(architecture.distinct_depths)
            assert architecture.cone_counts[primary] == 3

    def test_convenience_wrapper(self):
        architectures = enumerate_architectures("blur", 6, radius=1,
                                                window_sides=(3,), max_depth=2,
                                                max_cones_per_depth=2)
        assert all(a.window_side == 3 for a in architectures)
        assert len(architectures) == 4
