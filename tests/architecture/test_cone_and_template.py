"""Unit tests for cone shapes and the architectural template."""

import pytest

from repro.architecture.cone import ConeGeometry, ConeShape
from repro.architecture.template import ConeArchitecture, FeasibilityError


class TestConeShape:
    def test_window_area_and_label(self):
        shape = ConeShape(window_side=4, depth=3)
        assert shape.window_area == 16
        assert shape.label("blur") == "blur_16_d3"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ConeShape(0, 1)
        with pytest.raises(ValueError):
            ConeShape(1, 0)

    def test_ordering(self):
        assert ConeShape(1, 1) < ConeShape(2, 1)


class TestConeGeometry:
    def test_figure1_geometry(self):
        """Figure 1 of the paper: depth 2, window of 4 elements."""
        geometry = ConeShape(2, 2).geometry(radius=1)
        assert geometry.input_side == 6
        assert geometry.input_elements == 36
        assert geometry.output_elements == 4
        assert geometry.computed_elements == 20
        assert geometry.recompute_overhead == pytest.approx(5.0)

    def test_components_scale_counts(self):
        scalar = ConeShape(3, 2).geometry(radius=1, components=1)
        vector = ConeShape(3, 2).geometry(radius=1, components=2)
        assert vector.input_elements == 2 * scalar.input_elements
        assert vector.computed_elements == 2 * scalar.computed_elements

    def test_domain_roundtrip(self):
        geometry = ConeShape(3, 2).geometry(radius=1)
        domain = geometry.domain()
        assert domain.depth == 2
        assert domain.computed_elements == geometry.computed_elements


class TestConeArchitecture:
    def make(self, **overrides):
        kwargs = dict(kernel_name="blur", window_side=3, level_depths=[2, 2, 1],
                      cone_counts={2: 2, 1: 1}, radius=1)
        kwargs.update(overrides)
        return ConeArchitecture(**kwargs)

    def test_basic_structure(self):
        architecture = self.make()
        assert architecture.total_iterations == 5
        assert architecture.distinct_depths == [1, 2]
        assert architecture.total_cone_instances == 3
        assert len(architecture.levels) == 3
        assert len(architecture.shapes()) == 2

    def test_feasibility_rule(self):
        """The paper's rule: at least one cone of each required depth."""
        with pytest.raises(FeasibilityError):
            self.make(cone_counts={2: 2})
        with pytest.raises(FeasibilityError):
            self.make(cone_counts={2: 2, 1: 0})

    def test_empty_levels_rejected(self):
        with pytest.raises(FeasibilityError):
            self.make(level_depths=[])

    def test_region_sides_shrink_towards_output(self):
        architecture = self.make()
        sides = [architecture.region_side_after_level(i) for i in range(3)]
        assert sides == [3 + 2 * 3, 3 + 2 * 1, 3]
        assert architecture.input_region_side() == 3 + 2 * 5

    def test_executions_per_level(self):
        architecture = self.make()
        executions = architecture.executions_per_level()
        assert executions == [9, 4, 1]
        per_depth = architecture.executions_per_depth()
        assert per_depth == {2: 13, 1: 1}

    def test_offchip_traffic_per_tile(self):
        architecture = self.make()
        read, written = architecture.offchip_elements_per_tile()
        assert read == 13 * 13
        assert written == 9
        read_with_g, _ = architecture.offchip_elements_per_tile(readonly_components=1)
        assert read_with_g == 2 * 13 * 13

    def test_onchip_footprint_is_much_smaller_than_frame(self):
        """The key property of the cone template (Section 2.2)."""
        architecture = self.make(window_side=8)
        assert architecture.onchip_elements() < 3000
        assert architecture.onchip_elements() < 1024 * 768 / 100

    def test_label_and_describe(self):
        architecture = self.make()
        assert architecture.label() == "blur_9_d2x2x1"
        description = architecture.describe()
        assert "2x depth-2" in description and "1x depth-1" in description

    def test_geometry_lookup(self):
        architecture = self.make()
        assert architecture.geometry(2).shape.depth == 2

    def test_invalid_level_index(self):
        with pytest.raises(IndexError):
            self.make().region_side_after_level(7)
