"""Tests for the columnar design-space engine (ISSUE 4 tentpole).

The headline property: the engine and the legacy per-point scalar loop
produce *byte-identical* serialized ``ExplorationResult``s — vectorization
is a performance concern, never a semantics concern.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.architecture.enumeration import ArchitectureSpace, space_table
from repro.dse.constraints import DseConstraints
from repro.dse.engine import explore_columnar, supports_columnar
from repro.dse.explorer import DesignSpaceExplorer
from repro.estimation.throughput_model import ThroughputModel
from repro.ir.operators import DataFormat


def small_explorer(kernel, **overrides):
    keywords = dict(data_format=DataFormat.FIXED16,
                    window_sides=(1, 2, 3, 4), max_depth=3,
                    max_cones_per_depth=4, synthesize_all=True)
    keywords.update(overrides)
    return DesignSpaceExplorer(kernel, **keywords)


def serialized(result):
    return json.dumps(result.to_dict(), sort_keys=True)


class TestEngineEquivalence:
    """Engine output must be byte-identical to the scalar loop's."""

    def test_unconstrained_exploration_is_byte_identical(self, igf_kernel):
        explorer = small_explorer(igf_kernel)
        engine = explorer.explore(6, 128, 96)
        scalar = explorer.explore_scalar(6, 128, 96)
        assert engine.design_points  # non-trivial space
        assert serialized(engine) == serialized(scalar)

    def test_constrained_exploration_is_byte_identical(self, igf_kernel):
        explorer = small_explorer(igf_kernel)
        baseline = explorer.explore(6, 128, 96)
        areas = sorted(p.area_luts for p in baseline.design_points)
        rates = sorted(p.frames_per_second for p in baseline.design_points)
        # prune roughly half the space on each objective
        constraints = DseConstraints(
            max_area_luts=areas[len(areas) // 2],
            min_frames_per_second=rates[len(rates) // 2],
            device_only=True)
        engine = explorer.explore(6, 128, 96, constraints=constraints)
        scalar = explorer.explore_scalar(6, 128, 96, constraints=constraints)
        assert 0 < len(engine.design_points) < len(baseline.design_points)
        assert serialized(engine) == serialized(scalar)

    def test_multi_field_kernel_is_byte_identical(self, chambolle_kernel):
        explorer = small_explorer(chambolle_kernel, window_sides=(1, 2, 3),
                                  max_depth=2, synthesize_all=False)
        engine = explorer.explore(4, 64, 64)
        scalar = explorer.explore_scalar(4, 64, 64)
        assert serialized(engine) == serialized(scalar)

    def test_pareto_entries_are_indices_into_design_points(self, igf_kernel):
        """The engine hands the *same objects* to the Pareto list, so the
        serialized Pareto set stays index-encoded (not parallel copies)."""
        result = small_explorer(igf_kernel).explore(6, 128, 96)
        payload = result.to_dict()
        assert payload["pareto"]
        assert all(isinstance(entry, int) for entry in payload["pareto"])


class TestConstraintPushdown:
    def test_area_infeasible_rows_are_never_costed(self, igf_kernel):
        explorer = small_explorer(igf_kernel)
        characterizations, _ = explorer.characterize_cones(6)
        space = explorer._space(6)
        baseline = explore_columnar(
            space, characterizations, explorer.throughput_model, 128, 96)
        assert baseline.pruned_rows == 0
        cutoff = float(np.median(baseline.area_luts))
        constrained = explore_columnar(
            space, characterizations, explorer.throughput_model, 128, 96,
            constraints=DseConstraints(max_area_luts=cutoff))
        assert constrained.pruned_rows > 0
        assert (constrained.admitted_rows + constrained.pruned_rows
                == baseline.admitted_rows)
        assert (constrained.area_luts <= cutoff).all()

    def test_frontier_only_materialization(self, igf_kernel):
        explorer = small_explorer(igf_kernel)
        characterizations, _ = explorer.characterize_cones(6)
        space = explorer._space(6)
        full = explore_columnar(
            space, characterizations, explorer.throughput_model, 128, 96)
        frontier = explore_columnar(
            space, characterizations, explorer.throughput_model, 128, 96,
            materialize="frontier")
        assert frontier.design_points is None
        assert ([p.to_dict() for p in frontier.pareto]
                == [p.to_dict() for p in full.pareto])

    def test_unknown_materialize_mode_rejected(self, igf_kernel):
        explorer = small_explorer(igf_kernel)
        characterizations, _ = explorer.characterize_cones(6)
        with pytest.raises(ValueError, match="materialize"):
            explore_columnar(explorer._space(6), characterizations,
                             explorer.throughput_model, 128, 96,
                             materialize="everything")


class TestSharedTable:
    def test_row_order_matches_scalar_enumeration(self):
        space = ArchitectureSpace(kernel_name="blur", total_iterations=6,
                                  radius=1, window_sides=(1, 2, 3),
                                  max_depth=3, max_cones_per_depth=4)
        table = space.table()
        rows = [(architecture.window_side,
                 tuple(architecture.level_depths),
                 architecture.cone_counts[max(architecture.level_depths)])
                for architecture in space.architectures()]
        assert table.rows == space.size() == len(rows)
        for index, (window, split, count) in enumerate(rows):
            assert table.window[index] == window
            assert table.splits[table.split_index[index]] == split
            assert table.primary_count[index] == count
            assert table.primary_depth[index] == max(split)

    def test_table_is_shared_across_kernels_devices_and_formats(self):
        """The enumeration depends only on the shape knobs, so sweeps over
        devices/formats/kernels cost one table, not one per workload."""
        shape = dict(total_iterations=6, window_sides=(1, 2, 3),
                     max_depth=3, max_cones_per_depth=4)
        blur = ArchitectureSpace(kernel_name="blur", radius=1, **shape)
        chamb = ArchitectureSpace(kernel_name="chamb", radius=2,
                                  components=3, **shape)
        assert space_table(blur) is space_table(chamb)
        other = ArchitectureSpace(kernel_name="blur", radius=1,
                                  total_iterations=7, window_sides=(1, 2, 3),
                                  max_depth=3, max_cones_per_depth=4)
        assert space_table(blur) is not space_table(other)

    def test_table_arrays_are_read_only(self):
        space = ArchitectureSpace(kernel_name="blur", total_iterations=6,
                                  radius=1, window_sides=(1, 2),
                                  max_depth=2, max_cones_per_depth=2)
        table = space.table()
        with pytest.raises(ValueError):
            table.window[0] = 99


class TestBackendCompatibility:
    def test_builtin_model_is_columnar_capable(self):
        assert supports_columnar(ThroughputModel())

    def test_override_of_evaluate_disables_the_engine(self, igf_kernel):
        """A backend that overrides ``evaluate`` must be honored point-wise:
        the explorer falls back to the scalar loop instead of silently
        evaluating the stock batch formula."""

        class Halved(ThroughputModel):
            def evaluate(self, architecture, cone_performance,
                         frame_width, frame_height):
                performance = super().evaluate(
                    architecture, cone_performance, frame_width, frame_height)
                return dataclasses.replace(
                    performance,
                    seconds_per_frame=performance.seconds_per_frame * 2.0,
                    frames_per_second=performance.frames_per_second / 2.0)

        assert not supports_columnar(Halved())
        explorer = small_explorer(igf_kernel,
                                  throughput_model_factory=Halved)
        auto = explorer.explore(6, 128, 96)
        scalar = explorer.explore_scalar(6, 128, 96)
        assert serialized(auto) == serialized(scalar)
        stock = small_explorer(igf_kernel).explore(6, 128, 96)
        assert (auto.design_points[0].seconds_per_frame
                == 2.0 * stock.design_points[0].seconds_per_frame)

    def test_override_of_compute_cycles_hook_disables_the_engine(
            self, igf_kernel):
        """``compute_cycles_per_tile`` is a public hook ``evaluate`` calls;
        a subclass override must be honored (scalar fallback), never
        silently replaced by the stock batch accumulation."""

        class Congested(ThroughputModel):
            def compute_cycles_per_tile(self, architecture,
                                        cone_performance):
                return 1.5 * super().compute_cycles_per_tile(
                    architecture, cone_performance)

        assert not supports_columnar(Congested())
        explorer = small_explorer(igf_kernel,
                                  throughput_model_factory=Congested)
        auto = explorer.explore(6, 128, 96)
        assert serialized(auto) == serialized(explorer.explore_scalar(6, 128,
                                                                      96))
        stock = small_explorer(igf_kernel).explore(6, 128, 96)
        assert (auto.design_points[0].performance.compute_cycles_per_tile
                == 1.5 * stock.design_points[0].performance
                .compute_cycles_per_tile)

    def test_override_of_estimate_batch_alone_disables_the_engine(
            self, igf_kernel):
        """A lone ``estimate_batch`` override cannot be proven consistent
        with scalar evaluation, so the explorer falls back to the scalar
        loop (where the override is simply never consulted)."""

        class Padded(ThroughputModel):
            def estimate_batch(self, architecture, cone_performance,
                               frame_width, frame_height, primary_counts):
                columns = dict(super().estimate_batch(
                    architecture, cone_performance, frame_width,
                    frame_height, primary_counts))
                columns["seconds_per_frame"] = (
                    columns["seconds_per_frame"] * 1.25)
                return columns

        assert not supports_columnar(Padded())
        explorer = small_explorer(igf_kernel,
                                  throughput_model_factory=Padded)
        auto = explorer.explore(6, 128, 96)
        assert serialized(auto) == serialized(explorer.explore_scalar(6, 128,
                                                                      96))
        # scalar evaluation never consults the batch override
        assert serialized(auto) == serialized(
            small_explorer(igf_kernel).explore(6, 128, 96))

    def test_interval_hook_override_keeps_engine_usable_and_consistent(
            self, igf_kernel):
        """The fine-grained hooks are invoked on the instance by both
        paths, so overriding them composes with the engine."""

        class SlowPorts(ThroughputModel):
            def execution_interval_cycles(self, architecture, depth,
                                          performance):
                return 2.0 * super().execution_interval_cycles(
                    architecture, depth, performance)

        assert supports_columnar(SlowPorts())
        explorer = small_explorer(igf_kernel,
                                  throughput_model_factory=SlowPorts)
        auto = explorer.explore(6, 128, 96)
        assert serialized(auto) == serialized(explorer.explore_scalar(6, 128,
                                                                      96))
        stock = small_explorer(igf_kernel).explore(6, 128, 96)
        assert (auto.design_points[0].seconds_per_frame
                > stock.design_points[0].seconds_per_frame)
