"""Unit tests for the design-space explorer (using a reduced IGF space)."""

import pytest

from repro.dse.constraints import DseConstraints
from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.pareto import is_dominated
from repro.ir.operators import DataFormat


class TestCharacterization:
    def test_characterizations_cover_the_space(self, small_igf_exploration):
        result = small_igf_exploration
        windows = {w for w, _ in result.characterizations}
        depths = {d for _, d in result.characterizations}
        assert windows == {1, 2, 3, 4}
        assert depths == {1, 2, 3}

    def test_register_counts_increase_with_window(self, small_igf_exploration):
        result = small_igf_exploration
        for depth in (1, 2, 3):
            registers = [result.characterization(w, depth).register_count
                         for w in (1, 2, 3, 4)]
            assert registers == sorted(registers)
            assert registers[0] < registers[-1]

    def test_every_cone_is_synthesized_when_requested(self, small_igf_exploration):
        assert all(c.synthesized
                   for c in small_igf_exploration.characterizations.values())

    def test_area_validation_in_single_digit_percent(self, small_igf_exploration):
        for validation in small_igf_exploration.area_validations.values():
            assert validation.max_error_percent < 10.0


class TestExploration:
    def test_design_points_and_pareto_nonempty(self, small_igf_exploration):
        result = small_igf_exploration
        assert len(result.design_points) > 20
        assert 0 < len(result.pareto) <= len(result.design_points)

    def test_pareto_points_are_mutually_non_dominated(self, small_igf_exploration):
        front = small_igf_exploration.pareto
        for a in front:
            assert not any(is_dominated(a, b) for b in front if b is not a)

    def test_total_area_is_sum_of_cone_areas(self, small_igf_exploration):
        result = small_igf_exploration
        for point in result.design_points[:50]:
            expected = sum(
                point.architecture.cone_counts[d] * point.cone_area_by_depth[d]
                for d in point.architecture.distinct_depths)
            assert point.area_luts == pytest.approx(expected)

    def test_iteration_count_respected(self, small_igf_exploration):
        assert all(p.architecture.total_iterations == 6
                   for p in small_igf_exploration.design_points)

    def test_best_fitting_point_fits(self, small_igf_exploration):
        best = small_igf_exploration.best_fitting_point()
        assert best is not None and best.fits_device

    def test_points_for_filtering(self, small_igf_exploration):
        result = small_igf_exploration
        filtered = result.points_for(window_side=3, primary_depth=2)
        assert filtered
        assert all(p.architecture.window_side == 3 and p.primary_depth == 2
                   for p in filtered)


class TestEstimationOnlyMode:
    def test_calibration_only_uses_few_syntheses(self, igf_kernel):
        explorer = DesignSpaceExplorer(
            igf_kernel, data_format=DataFormat.FIXED16,
            window_sides=(1, 2, 3, 4), max_depth=2, max_cones_per_depth=2,
            synthesize_all=False)
        result = explorer.explore(total_iterations=4, frame_width=64, frame_height=64)
        # two calibration syntheses per depth family
        assert result.synthesis_runs == 4
        assert result.synthesis_runs_avoided == 4
        assert result.tool_runtime_avoided_s > 0
        estimated = [c for c in result.characterizations.values() if not c.synthesized]
        assert estimated and all(c.estimated_area_luts > 0 for c in estimated)

    def test_too_few_calibration_windows_rejected(self, igf_kernel):
        """The explorer must refuse (not silently raise) a calibration
        budget Equation 1 cannot anchor."""
        for bad in (0, 1, -3):
            with pytest.raises(ValueError,
                               match="calibration_windows_per_depth"):
                DesignSpaceExplorer(igf_kernel,
                                    calibration_windows_per_depth=bad)

    def test_calibration_windows_setting_is_not_mutated(self, igf_kernel):
        explorer = DesignSpaceExplorer(igf_kernel,
                                       calibration_windows_per_depth=3)
        assert explorer.calibration_windows_per_depth == 3

    def test_constraints_filter_points(self, igf_kernel):
        explorer = DesignSpaceExplorer(
            igf_kernel, data_format=DataFormat.FIXED16,
            window_sides=(2, 3), max_depth=2, max_cones_per_depth=2)
        unconstrained = explorer.explore(4, 128, 96)
        explorer2 = DesignSpaceExplorer(
            igf_kernel, data_format=DataFormat.FIXED16,
            window_sides=(2, 3), max_depth=2, max_cones_per_depth=2)
        constrained = explorer2.explore(
            4, 128, 96, constraints=DseConstraints(min_frames_per_second=1.0))
        assert len(constrained.design_points) <= len(unconstrained.design_points)
        assert all(p.frames_per_second >= 1.0 for p in constrained.design_points)
