"""Unit tests for Pareto extraction, design points and constraints."""

import pytest

from repro.architecture.template import ConeArchitecture
from repro.dse.constraints import DseConstraints
from repro.dse.design_point import DesignPoint
from repro.dse.pareto import is_dominated, pareto_front
from repro.estimation.throughput_model import ArchitecturePerformance


def make_point(area, spf, fits=True, window=3, depth=2):
    architecture = ConeArchitecture(
        kernel_name="blur", window_side=window, level_depths=[depth],
        cone_counts={depth: 1}, radius=1)
    performance = ArchitecturePerformance(
        architecture_label=architecture.label(),
        clock_hz=1e8,
        tiles_per_frame=100,
        compute_cycles_per_tile=10,
        transfer_cycles_per_tile=5,
        cycles_per_tile=10,
        seconds_per_frame=spf,
        frames_per_second=1.0 / spf,
        offchip_bytes_per_frame=1000,
        compute_bound=True,
    )
    return DesignPoint(architecture=architecture, area_luts=area,
                       area_estimated=True, performance=performance,
                       fits_device=fits)


class TestDesignPoint:
    def test_derived_properties(self):
        point = make_point(25_000, 0.02, window=4, depth=3)
        assert point.kilo_luts == pytest.approx(25.0)
        assert point.frames_per_second == pytest.approx(50.0)
        assert point.window_area == 16
        assert point.primary_depth == 3
        assert point.cone_count == 1
        assert "kLUT" in point.summary()

    def test_summary_flags_oversized_designs(self):
        point = make_point(1e6, 0.01, fits=False)
        assert "exceeds device" in point.summary()


class TestDomination:
    def test_strict_domination(self):
        good = make_point(100, 1.0)
        bad = make_point(200, 2.0)
        assert is_dominated(bad, good)
        assert not is_dominated(good, bad)

    def test_trade_off_points_do_not_dominate(self):
        small_slow = make_point(100, 2.0)
        big_fast = make_point(200, 1.0)
        assert not is_dominated(small_slow, big_fast)
        assert not is_dominated(big_fast, small_slow)

    def test_equal_points_do_not_dominate(self):
        a = make_point(100, 1.0)
        b = make_point(100, 1.0)
        assert not is_dominated(a, b)


class TestParetoFront:
    def test_front_is_sorted_and_non_dominated(self):
        points = [make_point(a, s) for a, s in
                  [(100, 5.0), (150, 3.0), (200, 4.0), (300, 1.0), (400, 1.0)]]
        front = pareto_front(points)
        areas = [p.area_luts for p in front]
        times = [p.seconds_per_frame for p in front]
        assert areas == sorted(areas)
        assert times == sorted(times, reverse=True)
        assert {p.area_luts for p in front} == {100, 150, 300}

    def test_front_of_empty_set(self):
        assert pareto_front([]) == []

    def test_every_input_point_is_dominated_or_on_front(self):
        points = [make_point(a, s) for a, s in
                  [(100, 5.0), (120, 4.5), (130, 6.0), (200, 2.0), (500, 2.5)]]
        front = pareto_front(points)
        for point in points:
            on_front = any(point is f for f in front)
            dominated = any(is_dominated(point, f) for f in front)
            assert on_front or dominated


class TestConstraints:
    def test_default_admits_everything(self):
        assert DseConstraints().admits(make_point(100, 1.0, fits=False))

    def test_throughput_bound(self):
        constraints = DseConstraints(min_frames_per_second=30.0)
        assert constraints.admits(make_point(100, 1 / 60))
        assert not constraints.admits(make_point(100, 1 / 10))

    def test_area_bound_and_device_only(self):
        constraints = DseConstraints(max_area_luts=150, device_only=True)
        assert constraints.admits(make_point(100, 1.0, fits=True))
        assert not constraints.admits(make_point(200, 1.0, fits=True))
        assert not constraints.admits(make_point(100, 1.0, fits=False))
