"""Unit tests for Pareto extraction, design points and constraints."""

import numpy as np
import pytest

from repro.architecture.template import ConeArchitecture
from repro.dse.constraints import DseConstraints
from repro.dse.design_point import DesignPoint
from repro.dse.pareto import (_VECTORIZE_THRESHOLD, is_dominated,
                              pareto_front, pareto_indices)
from repro.estimation.throughput_model import ArchitecturePerformance


def make_point(area, spf, fits=True, window=3, depth=2):
    architecture = ConeArchitecture(
        kernel_name="blur", window_side=window, level_depths=[depth],
        cone_counts={depth: 1}, radius=1)
    performance = ArchitecturePerformance(
        architecture_label=architecture.label(),
        clock_hz=1e8,
        tiles_per_frame=100,
        compute_cycles_per_tile=10,
        transfer_cycles_per_tile=5,
        cycles_per_tile=10,
        seconds_per_frame=spf,
        frames_per_second=1.0 / spf,
        offchip_bytes_per_frame=1000,
        compute_bound=True,
    )
    return DesignPoint(architecture=architecture, area_luts=area,
                       area_estimated=True, performance=performance,
                       fits_device=fits)


class TestDesignPoint:
    def test_derived_properties(self):
        point = make_point(25_000, 0.02, window=4, depth=3)
        assert point.kilo_luts == pytest.approx(25.0)
        assert point.frames_per_second == pytest.approx(50.0)
        assert point.window_area == 16
        assert point.primary_depth == 3
        assert point.cone_count == 1
        assert "kLUT" in point.summary()

    def test_summary_flags_oversized_designs(self):
        point = make_point(1e6, 0.01, fits=False)
        assert "exceeds device" in point.summary()


class TestDomination:
    def test_strict_domination(self):
        good = make_point(100, 1.0)
        bad = make_point(200, 2.0)
        assert is_dominated(bad, good)
        assert not is_dominated(good, bad)

    def test_trade_off_points_do_not_dominate(self):
        small_slow = make_point(100, 2.0)
        big_fast = make_point(200, 1.0)
        assert not is_dominated(small_slow, big_fast)
        assert not is_dominated(big_fast, small_slow)

    def test_equal_points_do_not_dominate(self):
        a = make_point(100, 1.0)
        b = make_point(100, 1.0)
        assert not is_dominated(a, b)


class TestParetoFront:
    def test_front_is_sorted_and_non_dominated(self):
        points = [make_point(a, s) for a, s in
                  [(100, 5.0), (150, 3.0), (200, 4.0), (300, 1.0), (400, 1.0)]]
        front = pareto_front(points)
        areas = [p.area_luts for p in front]
        times = [p.seconds_per_frame for p in front]
        assert areas == sorted(areas)
        assert times == sorted(times, reverse=True)
        assert {p.area_luts for p in front} == {100, 150, 300}

    def test_front_of_empty_set(self):
        assert pareto_front([]) == []

    def test_every_input_point_is_dominated_or_on_front(self):
        points = [make_point(a, s) for a, s in
                  [(100, 5.0), (120, 4.5), (130, 6.0), (200, 2.0), (500, 2.5)]]
        front = pareto_front(points)
        for point in points:
            on_front = any(point is f for f in front)
            dominated = any(is_dominated(point, f) for f in front)
            assert on_front or dominated


def reference_scan(points):
    """Longhand sort-and-scan twin used to pin both production paths."""
    ordered = sorted(points, key=lambda p: (p.area_luts, p.seconds_per_frame))
    front, best_time = [], float("inf")
    for point in ordered:
        if point.seconds_per_frame < best_time:
            front.append(point)
            best_time = point.seconds_per_frame
    return front


class TestTieBreakingDeterminism:
    """ISSUE 4 satellite: equal (area, time) points keep one representative
    — the first seen in the input — identically on the pure-Python and the
    NumPy path (both sorts are stable)."""

    def test_small_input_keeps_first_seen_duplicate(self):
        first = make_point(100, 1.0)
        second = make_point(100, 1.0)
        front = pareto_front([first, second])
        assert len(front) == 1 and front[0] is first
        # ... and input order, not construction order, decides
        front = pareto_front([second, first])
        assert len(front) == 1 and front[0] is second

    def test_numpy_and_python_paths_agree_on_ties(self):
        """The same point multiset, below and above the vectorization
        threshold, must keep identity-identical representatives."""
        pairs = [(100 + 10 * (i % 7), 1.0 + (i % 5) * 0.25)
                 for i in range(_VECTORIZE_THRESHOLD - 4)]
        small_points = [make_point(a, t) for a, t in pairs]
        small_front = pareto_front(small_points)          # pure-Python scan
        padding = [make_point(1e9, 1e9)                   # dominated filler
                   for _ in range(8)]
        large_points = small_points + padding
        assert len(large_points) >= _VECTORIZE_THRESHOLD
        large_front = pareto_front(large_points)          # NumPy path
        assert [id(p) for p in large_front] == [id(p) for p in small_front]
        assert small_front == reference_scan(small_points)

    def test_pareto_indices_matches_pareto_front_order(self):
        pairs = [(150, 3.0), (100, 5.0), (100, 5.0), (300, 1.0), (150, 3.0),
                 (300, 1.0), (120, 4.0)]
        points = [make_point(a, t) for a, t in pairs]
        order = pareto_indices(np.array([a for a, _ in pairs], dtype=float),
                               np.array([t for _, t in pairs], dtype=float))
        assert [points[i] for i in order] == pareto_front(points)
        # first-seen representatives: the duplicate rows keep the lower index
        assert list(order) == [1, 6, 0, 3]


class TestNonFiniteRejection:
    """NaN/inf objectives are estimation bugs; both paths refuse them."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    @pytest.mark.parametrize("objective", ["area", "time"])
    def test_python_path_rejects_non_finite(self, bad, objective):
        points = [make_point(100, 1.0),
                  make_point(bad, 1.0) if objective == "area"
                  else make_point(100, bad)]
        with pytest.raises(ValueError, match="finite"):
            pareto_front(points)

    def test_numpy_path_rejects_non_finite(self):
        points = [make_point(100 + i, 1.0) for i in range(_VECTORIZE_THRESHOLD)]
        points.append(make_point(float("nan"), 1.0))
        with pytest.raises(ValueError, match="finite"):
            pareto_front(points)

    def test_pareto_indices_rejects_non_finite_and_bad_shapes(self):
        with pytest.raises(ValueError, match="finite"):
            pareto_indices(np.array([1.0, float("inf")]),
                           np.array([1.0, 2.0]))
        with pytest.raises(ValueError, match="equal length"):
            pareto_indices(np.array([1.0, 2.0]), np.array([1.0]))

    def test_empty_columns_yield_empty_front(self):
        assert pareto_indices(np.empty(0), np.empty(0)).size == 0


class TestConstraints:
    def test_default_admits_everything(self):
        assert DseConstraints().admits(make_point(100, 1.0, fits=False))

    def test_throughput_bound(self):
        constraints = DseConstraints(min_frames_per_second=30.0)
        assert constraints.admits(make_point(100, 1 / 60))
        assert not constraints.admits(make_point(100, 1 / 10))

    def test_area_bound_and_device_only(self):
        constraints = DseConstraints(max_area_luts=150, device_only=True)
        assert constraints.admits(make_point(100, 1.0, fits=True))
        assert not constraints.admits(make_point(200, 1.0, fits=True))
        assert not constraints.admits(make_point(100, 1.0, fits=False))
