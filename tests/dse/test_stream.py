"""Tests for the out-of-core chunked exploration engine (ISSUE 7 tentpole;
parallel dispatch + throughput-side pushdown from ISSUE 9).

The headline property: whatever the chunk size {1 row, group-sized, the
whole space}, whatever the chunk order, and whatever the worker count /
executor strategy, ``explore_stream`` produces the identical Pareto
frontier — same global rows, byte-identical serialized design points — as
the columnar oracle ``explore_columnar``; its ``pruned_rows`` additionally
counts the rows the min-fps suffix pushdown skipped before costing.
"""

import json
import random

import numpy as np
import pytest

from repro.dse.constraints import DseConstraints
from repro.dse.engine import explore_columnar, shared_table_stats
from repro.dse.explorer import DesignSpaceExplorer, ExplorationResult
from repro.dse.stream import (
    DEFAULT_CHUNK_ROWS,
    SpaceChunk,
    StreamingFrontier,
    StreamingTopK,
    clear_stream_caches,
    explore_stream,
    plan_chunks,
    reset_stream_stats,
    stream_stats,
)
from repro.estimation.throughput_model import ThroughputModel
from repro.ir.operators import DataFormat


def small_explorer(kernel, **overrides):
    keywords = dict(data_format=DataFormat.FIXED16,
                    window_sides=(1, 2, 3, 4), max_depth=3,
                    max_cones_per_depth=6, synthesize_all=True)
    keywords.update(overrides)
    return DesignSpaceExplorer(kernel, **keywords)


def serialized_points(points):
    return json.dumps([p.to_dict() for p in points], sort_keys=True)


@pytest.fixture(autouse=True)
def fresh_mask_cache():
    clear_stream_caches()
    yield
    clear_stream_caches()


@pytest.fixture
def evaluation_inputs(igf_kernel):
    explorer = small_explorer(igf_kernel)
    characterizations, _ = explorer.characterize_cones(6)
    space = explorer._space(6)
    usable = explorer.device.usable_capacity.luts
    return explorer, space, characterizations, usable


def constraint_grid(baseline):
    areas = sorted(baseline.area_luts.tolist())
    return [
        None,
        DseConstraints(device_only=True),
        DseConstraints(max_area_luts=areas[len(areas) // 2],
                       min_frames_per_second=1.0, device_only=True),
    ]


class TestDigestIdentity:
    def test_identical_to_columnar_across_chunk_sizes_and_orders(
            self, evaluation_inputs):
        explorer, space, characterizations, usable = evaluation_inputs
        baseline = explore_columnar(space, characterizations,
                                    explorer.throughput_model, 128, 96)
        group_rows = space.max_cones_per_depth
        for constraints in constraint_grid(baseline):
            oracle = explore_columnar(
                space, characterizations, explorer.throughput_model,
                128, 96, constraints, usable, materialize="frontier")
            oracle_rows = oracle.row_index[oracle.pareto_index]
            oracle_digest = serialized_points(oracle.pareto)
            for chunk_rows in (1, group_rows, space.size()):
                for seed in (None, 7, 23):
                    order = None
                    if seed is not None:
                        order = list(range(len(plan_chunks(space,
                                                           chunk_rows))))
                        random.Random(seed).shuffle(order)
                    streamed = explore_stream(
                        space, characterizations, explorer.throughput_model,
                        128, 96, constraints, usable,
                        chunk_rows=chunk_rows, chunk_order=order)
                    assert np.array_equal(streamed.pareto_row_index,
                                          oracle_rows)
                    assert (serialized_points(streamed.pareto)
                            == oracle_digest)
                    # the oracle never counts fps-filtered rows as pruned;
                    # the stream pushes the floor down and does
                    assert (streamed.pruned_rows
                            - streamed.throughput_pruned_rows
                            == oracle.pruned_rows)
                    assert streamed.admitted_rows == oracle.admitted_rows

    def test_peak_chunk_never_exceeds_the_bound(self, evaluation_inputs):
        explorer, space, characterizations, usable = evaluation_inputs
        streamed = explore_stream(space, characterizations,
                                  explorer.throughput_model, 128, 96,
                                  usable_luts=usable, chunk_rows=4)
        assert 0 < streamed.peak_chunk_rows <= 4
        assert streamed.chunks_total == len(plan_chunks(space, 4))


class TestConstraintPushdown:
    def test_pruned_rows_match_engine_and_skip_materialization(
            self, evaluation_inputs):
        explorer, space, characterizations, usable = evaluation_inputs
        baseline = explore_columnar(space, characterizations,
                                    explorer.throughput_model, 128, 96)
        cutoff = float(np.median(baseline.area_luts))
        constraints = DseConstraints(max_area_luts=cutoff)
        oracle = explore_columnar(space, characterizations,
                                  explorer.throughput_model, 128, 96,
                                  constraints, usable)
        streamed = explore_stream(space, characterizations,
                                  explorer.throughput_model, 128, 96,
                                  constraints, usable, chunk_rows=2)
        assert streamed.pruned_rows == oracle.pruned_rows > 0
        # whole chunks beyond the admitted prefix were never materialized
        assert streamed.chunks_skipped > 0
        assert (streamed.admitted_rows + streamed.pruned_rows
                == baseline.admitted_rows)

    def test_unreachable_fps_floor_prunes_everything_before_costing(
            self, evaluation_inputs):
        explorer, space, characterizations, usable = evaluation_inputs
        constraints = DseConstraints(min_frames_per_second=1e12)
        streamed = explore_stream(space, characterizations,
                                  explorer.throughput_model, 128, 96,
                                  constraints, usable)
        assert streamed.pruned_rows == space.size()
        assert streamed.throughput_pruned_rows == space.size()
        assert streamed.admitted_rows == 0
        assert streamed.pareto == []
        # nothing survived the suffix probe, so no chunk was ever costed
        assert streamed.chunks_skipped == streamed.chunks_total
        assert streamed.peak_chunk_rows == 0


class TestThroughputPushdown:
    """The min-fps suffix probe admits exactly what post-cost filtering
    admits (satellite: differential on 3 constraint sets)."""

    def fps_floors(self, baseline):
        fps = np.sort(1.0 / baseline.seconds_per_frame)
        return [float(fps[fps.size // 4]), float(np.median(fps)),
                float(fps[(9 * fps.size) // 10])]

    def test_admits_exactly_the_post_cost_filter_rows(
            self, evaluation_inputs):
        explorer, space, characterizations, usable = evaluation_inputs
        baseline = explore_columnar(space, characterizations,
                                    explorer.throughput_model, 128, 96)
        area_cap = float(np.median(baseline.area_luts))
        for floor in self.fps_floors(baseline):
            for extra in ({}, {"max_area_luts": area_cap,
                               "device_only": True}):
                constraints = DseConstraints(min_frames_per_second=floor,
                                             **extra)
                no_fps = explore_columnar(
                    space, characterizations, explorer.throughput_model,
                    128, 96, DseConstraints(**extra), usable)
                oracle = explore_columnar(
                    space, characterizations, explorer.throughput_model,
                    128, 96, constraints, usable, materialize="frontier")
                streamed = explore_stream(
                    space, characterizations, explorer.throughput_model,
                    128, 96, constraints, usable, chunk_rows=2)
                assert streamed.admitted_rows == oracle.admitted_rows
                assert np.array_equal(
                    streamed.pareto_row_index,
                    oracle.row_index[oracle.pareto_index])
                assert (serialized_points(streamed.pareto)
                        == serialized_points(oracle.pareto))
                # the pushdown pruned exactly the rows the oracle costed
                # and then dropped to the post-cost fps mask
                assert (streamed.throughput_pruned_rows
                        == no_fps.admitted_rows - oracle.admitted_rows)
                assert (streamed.admitted_rows + streamed.pruned_rows
                        == space.size())

    def test_fps_floor_raises_pruned_rows_over_the_oracle(
            self, evaluation_inputs):
        explorer, space, characterizations, usable = evaluation_inputs
        baseline = explore_columnar(space, characterizations,
                                    explorer.throughput_model, 128, 96)
        constraints = DseConstraints(
            min_frames_per_second=self.fps_floors(baseline)[1])
        oracle = explore_columnar(space, characterizations,
                                  explorer.throughput_model, 128, 96,
                                  constraints, usable)
        streamed = explore_stream(space, characterizations,
                                  explorer.throughput_model, 128, 96,
                                  constraints, usable)
        assert streamed.throughput_pruned_rows > 0
        assert streamed.pruned_rows > oracle.pruned_rows == 0
        assert stream_stats()["throughput_pruned_rows"] > 0

    def test_non_monotone_model_falls_back_to_post_cost_filter(
            self, evaluation_inputs):
        class NegativeInterval(ThroughputModel):
            """Columnar-capable, but the monotonicity argument is void."""

            def execution_interval_cycles(self, architecture, depth,
                                          performance):
                return -super().execution_interval_cycles(
                    architecture, depth, performance)

        explorer, space, characterizations, usable = evaluation_inputs
        model = NegativeInterval(device=explorer.device,
                                 data_format=explorer.data_format)
        constraints = DseConstraints(min_frames_per_second=1.0)
        oracle = explore_columnar(space, characterizations, model,
                                  128, 96, constraints, usable,
                                  materialize="frontier")
        streamed = explore_stream(space, characterizations, model,
                                  128, 96, constraints, usable,
                                  chunk_rows=3)
        assert streamed.throughput_pruned_rows == 0  # probe declined
        assert streamed.admitted_rows == oracle.admitted_rows
        assert (serialized_points(streamed.pareto)
                == serialized_points(oracle.pareto))

    def test_fps_floor_change_still_reuses_cached_masks(
            self, evaluation_inputs):
        explorer, space, characterizations, usable = evaluation_inputs
        baseline = explore_columnar(space, characterizations,
                                    explorer.throughput_model, 128, 96)
        floors = self.fps_floors(baseline)
        first = explore_stream(
            space, characterizations, explorer.throughput_model, 128, 96,
            DseConstraints(min_frames_per_second=floors[0]), usable)
        second = explore_stream(
            space, characterizations, explorer.throughput_model, 128, 96,
            DseConstraints(min_frames_per_second=floors[2]), usable)
        assert not first.mask_cache_hit
        assert second.mask_cache_hit  # the floor is not in the mask key
        oracle = explore_columnar(
            space, characterizations, explorer.throughput_model, 128, 96,
            DseConstraints(min_frames_per_second=floors[2]), usable,
            materialize="frontier")
        assert (serialized_points(second.pareto)
                == serialized_points(oracle.pareto))


class TestParallelDispatch:
    """Multi-worker chunk dispatch is bit-identical to the serial fold
    across executor strategies, worker counts, and shuffled schedules."""

    def test_bit_identity_across_jobs_executors_and_orders(
            self, evaluation_inputs):
        explorer, space, characterizations, usable = evaluation_inputs
        constraints = DseConstraints(device_only=True)
        serial = explore_stream(space, characterizations,
                                explorer.throughput_model, 128, 96,
                                constraints, usable, chunk_rows=2)
        digest = serialized_points(serial.pareto)
        order = list(range(len(plan_chunks(space, 2))))
        random.Random(11).shuffle(order)
        for jobs in (1, 2, 4):
            for executor in ("serial", "threads"):
                for chunk_order in (None, order):
                    streamed = explore_stream(
                        space, characterizations, explorer.throughput_model,
                        128, 96, constraints, usable, chunk_rows=2,
                        chunk_order=chunk_order, jobs=jobs,
                        executor=executor)
                    assert np.array_equal(streamed.pareto_row_index,
                                          serial.pareto_row_index)
                    assert serialized_points(streamed.pareto) == digest
                    assert streamed.admitted_rows == serial.admitted_rows
                    assert streamed.pruned_rows == serial.pruned_rows
                    assert (serialized_points(streamed.top_points)
                            == serialized_points(serial.top_points))
                    assert streamed.jobs == min(jobs, len(order))
        assert stream_stats()["duplicate_chunk_materializations"] == 0

    def test_workers_get_descriptors_and_never_touch_the_table_cache(
            self, evaluation_inputs):
        explorer, space, characterizations, usable = evaluation_inputs
        reset_stream_stats()
        before = shared_table_stats()
        streamed = explore_stream(space, characterizations,
                                  explorer.throughput_model, 128, 96,
                                  usable_luts=usable, chunk_rows=2,
                                  jobs=4, executor="threads")
        after = shared_table_stats()
        assert streamed.jobs == 4
        assert (after["hits"], after["misses"]) == (before["hits"],
                                                    before["misses"])
        stats = stream_stats()
        assert stats["parallel_runs"] == 1 and stats["runs"] == 1
        assert stats["chunks_materialized"] > 0
        assert stats["duplicate_chunk_materializations"] == 0

    @pytest.mark.slow
    @pytest.mark.par
    def test_processes_executor_is_digest_identical(self,
                                                    evaluation_inputs):
        explorer, space, characterizations, usable = evaluation_inputs
        constraints = DseConstraints(device_only=True,
                                     min_frames_per_second=1.0)
        serial = explore_stream(space, characterizations,
                                explorer.throughput_model, 128, 96,
                                constraints, usable, chunk_rows=2)
        forked = explore_stream(space, characterizations,
                                explorer.throughput_model, 128, 96,
                                constraints, usable, chunk_rows=2,
                                jobs=2, executor="processes")
        assert forked.jobs == 2
        assert np.array_equal(forked.pareto_row_index,
                              serial.pareto_row_index)
        assert (serialized_points(forked.pareto)
                == serialized_points(serial.pareto))
        assert forked.admitted_rows == serial.admitted_rows
        assert stream_stats()["duplicate_chunk_materializations"] == 0

    def test_invalid_jobs_rejected(self, evaluation_inputs):
        explorer, space, characterizations, usable = evaluation_inputs
        for bad in (0, -1, True, 2.5):
            with pytest.raises(ValueError, match="jobs"):
                explore_stream(space, characterizations,
                               explorer.throughput_model, 128, 96,
                               usable_luts=usable, jobs=bad)

    def test_topk_merge_rejects_mismatched_k(self):
        with pytest.raises(ValueError, match="different k"):
            StreamingTopK(3).merge(StreamingTopK(4))


class TestMaskCache:
    def test_frame_change_reuses_masks(self, evaluation_inputs):
        explorer, space, characterizations, usable = evaluation_inputs
        constraints = DseConstraints(device_only=True)
        first = explore_stream(space, characterizations,
                               explorer.throughput_model, 128, 96,
                               constraints, usable)
        second = explore_stream(space, characterizations,
                                explorer.throughput_model, 640, 480,
                                constraints, usable)
        assert not first.mask_cache_hit
        assert second.mask_cache_hit
        stats = stream_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        # the reused run is still digest-identical to its own oracle
        oracle = explore_columnar(space, characterizations,
                                  explorer.throughput_model, 640, 480,
                                  constraints, usable,
                                  materialize="frontier")
        assert (serialized_points(second.pareto)
                == serialized_points(oracle.pareto))

    def test_area_constraint_change_recomputes(self, evaluation_inputs):
        explorer, space, characterizations, usable = evaluation_inputs
        explore_stream(space, characterizations, explorer.throughput_model,
                       128, 96, DseConstraints(device_only=True), usable)
        tightened = explore_stream(
            space, characterizations, explorer.throughput_model, 128, 96,
            DseConstraints(device_only=True, max_area_luts=50_000.0), usable)
        assert not tightened.mask_cache_hit

    def test_cache_can_be_disabled(self, evaluation_inputs):
        explorer, space, characterizations, usable = evaluation_inputs
        for _ in range(2):
            streamed = explore_stream(space, characterizations,
                                      explorer.throughput_model, 128, 96,
                                      usable_luts=usable,
                                      use_mask_cache=False)
            assert not streamed.mask_cache_hit
        assert stream_stats()["entries"] == 0


class TestTopK:
    def test_top_points_are_the_k_fastest_admitted(self, evaluation_inputs):
        explorer, space, characterizations, usable = evaluation_inputs
        oracle = explore_columnar(space, characterizations,
                                  explorer.throughput_model, 128, 96,
                                  usable_luts=usable)
        k = 5
        streamed = explore_stream(space, characterizations,
                                  explorer.throughput_model, 128, 96,
                                  usable_luts=usable, chunk_rows=3, top_k=k)
        expected = np.lexsort((oracle.row_index, oracle.area_luts,
                               oracle.seconds_per_frame))[:k]
        expected_times = oracle.seconds_per_frame[expected]
        got_times = [p.seconds_per_frame for p in streamed.top_points]
        assert got_times == expected_times.tolist()
        assert len(streamed.top_points) == k


class TestChunkPlanning:
    def test_chunks_cover_the_space_exactly_once(self, evaluation_inputs):
        _, space, _, _ = evaluation_inputs
        for chunk_rows in (1, 4, 1000):
            chunks = plan_chunks(space, chunk_rows)
            rows = sorted(row
                          for chunk in chunks
                          for row in range(chunk.base_row + chunk.count_start,
                                           chunk.base_row + chunk.count_stop))
            assert rows == list(range(space.size()))
            assert all(chunk.rows <= chunk_rows for chunk in chunks)

    def test_counts_are_dtype_tightened(self):
        chunk = SpaceChunk(window=1, window_index=0, split=(1,),
                           split_index=0, base_row=0, count_start=2,
                           count_stop=5)
        counts = chunk.counts()
        assert counts.dtype == np.int32
        assert counts.tolist() == [3, 4, 5]

    def test_invalid_arguments_rejected(self, evaluation_inputs):
        explorer, space, characterizations, usable = evaluation_inputs
        with pytest.raises(ValueError, match="chunk_rows"):
            plan_chunks(space, 0)
        with pytest.raises(ValueError, match="permutation"):
            explore_stream(space, characterizations,
                           explorer.throughput_model, 128, 96,
                           usable_luts=usable, chunk_order=[0, 0, 1])


class TestExplorerIntegration:
    def test_stream_true_matches_columnar_pareto(self, igf_kernel):
        explorer = small_explorer(igf_kernel)
        streamed = explorer.explore(6, 128, 96, stream=True, chunk_rows=4)
        columnar = explorer.explore(6, 128, 96)
        assert (serialized_points(streamed.pareto)
                == serialized_points(columnar.pareto))
        assert streamed.streaming is not None
        assert streamed.streaming["chunk_rows"] == 4
        assert columnar.streaming is None
        # streamed results materialize only the frontier
        assert streamed.design_points == streamed.pareto
        payload = streamed.to_dict()
        assert all(isinstance(entry, int) for entry in payload["pareto"])

    def test_stream_jobs_matches_the_serial_stream(self, igf_kernel):
        explorer = small_explorer(igf_kernel)
        serial = explorer.explore(6, 128, 96, stream=True, chunk_rows=2)
        parallel = explorer.explore(6, 128, 96, stream=True, chunk_rows=2,
                                    stream_jobs=4, stream_executor="serial")
        assert (serialized_points(parallel.pareto)
                == serialized_points(serial.pareto))
        assert serial.streaming["stream_jobs"] == 1
        assert parallel.streaming["stream_jobs"] == 4
        assert (parallel.streaming["pruned_rows"]
                == serial.streaming["pruned_rows"])

    def test_streaming_result_round_trips_through_json(self, igf_kernel):
        explorer = small_explorer(igf_kernel)
        streamed = explorer.explore(6, 128, 96, stream=True)
        restored = ExplorationResult.from_dict(
            json.loads(json.dumps(streamed.to_dict())))
        assert restored.streaming == streamed.streaming
        assert (serialized_points(restored.pareto)
                == serialized_points(streamed.pareto))

    def test_auto_select_streams_above_the_threshold(self, igf_kernel,
                                                     monkeypatch):
        import repro.dse.explorer as explorer_module
        explorer = small_explorer(igf_kernel)
        monkeypatch.setattr(explorer_module, "STREAM_AUTO_THRESHOLD", 10)
        auto = explorer.explore(6, 128, 96)
        assert auto.streaming is not None
        monkeypatch.setattr(explorer_module, "STREAM_AUTO_THRESHOLD",
                            10**9)
        in_memory = explorer.explore(6, 128, 96)
        assert in_memory.streaming is None
        assert (serialized_points(auto.pareto)
                == serialized_points(in_memory.pareto))

    def test_explore_scalar_never_auto_streams(self, igf_kernel,
                                               monkeypatch):
        import repro.dse.explorer as explorer_module
        monkeypatch.setattr(explorer_module, "STREAM_AUTO_THRESHOLD", 1)
        explorer = small_explorer(igf_kernel)
        result = explorer.explore_scalar(6, 128, 96)
        assert result.streaming is None

    def test_stream_requires_columnar_capable_backend(self, igf_kernel):
        class ScalarOnly(ThroughputModel):
            def evaluate(self, *args, **kwargs):
                return super().evaluate(*args, **kwargs)

        explorer = small_explorer(igf_kernel,
                                  throughput_model_factory=ScalarOnly)
        with pytest.raises(ValueError, match="columnar-capable"):
            explorer.explore(6, 128, 96, stream=True)
        # and auto-select quietly stays on the scalar path
        result = explorer.explore(6, 128, 96)
        assert result.streaming is None


class TestFrontierStateBound:
    def test_state_is_bounded_by_the_frontier_not_the_space(
            self, evaluation_inputs):
        explorer, space, characterizations, usable = evaluation_inputs
        streamed = explore_stream(space, characterizations,
                                  explorer.throughput_model, 128, 96,
                                  usable_luts=usable, chunk_rows=1)
        assert streamed.frontier_peak < space.size()
        assert streamed.frontier_peak >= len(streamed.pareto)

    def test_incremental_updates_accept_empty_chunks(self):
        frontier = StreamingFrontier()
        frontier.update(np.empty(0), np.empty(0),
                        np.empty(0, dtype=np.int64))
        assert len(frontier) == 0
