"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.algorithms import get_algorithm
from repro.dse.explorer import DesignSpaceExplorer
from repro.frontend.dsl import stencil_kernel
from repro.ir.operators import DataFormat
from repro.synth.fpga_device import VIRTEX6_XC6VLX760, VIRTEX2P_XC2VP30


@pytest.fixture(scope="session")
def igf_kernel():
    """The iterative Gaussian filter kernel (paper case study 4.1)."""
    return get_algorithm("blur").kernel()


@pytest.fixture(scope="session")
def chambolle_kernel():
    """The Chambolle total-variation kernel (paper case study 4.2)."""
    return get_algorithm("chamb").kernel()


@pytest.fixture(scope="session")
def jacobi_kernel():
    return get_algorithm("jacobi").kernel()


@pytest.fixture(scope="session")
def heat_kernel():
    return get_algorithm("heat").kernel()


@pytest.fixture(scope="session")
def erosion_kernel():
    return get_algorithm("erode").kernel()


@pytest.fixture(scope="session")
def virtex6():
    return VIRTEX6_XC6VLX760


@pytest.fixture(scope="session")
def virtex2pro():
    return VIRTEX2P_XC2VP30


@pytest.fixture(scope="session")
def small_igf_exploration(igf_kernel):
    """A reduced IGF exploration shared by DSE/flow tests (fast: small space)."""
    explorer = DesignSpaceExplorer(
        igf_kernel,
        data_format=DataFormat.FIXED16,
        window_sides=(1, 2, 3, 4),
        max_depth=3,
        max_cones_per_depth=4,
        synthesize_all=True,
    )
    return explorer.explore(total_iterations=6, frame_width=128, frame_height=96)


def simple_axpy_kernel():
    """A minimal 5-point kernel used by unit tests that need a tiny kernel."""

    def define(k):
        f = k.field("f")
        k.update(f, 0.5 * f(0, 0) + 0.125 * (f(1, 0) + f(-1, 0) + f(0, 1) + f(0, -1)))

    return stencil_kernel("axpy5", define)


@pytest.fixture()
def tiny_kernel():
    return simple_axpy_kernel()
