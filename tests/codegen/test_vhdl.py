"""Unit tests for VHDL generation (cone entities, top level, testbench)."""

import re

import pytest

from repro.architecture.template import ConeArchitecture
from repro.codegen.naming import signal_name, vhdl_identifier
from repro.codegen.vhdl_testbench import generate_testbench
from repro.codegen.vhdl_toplevel import generate_architecture_toplevel
from repro.codegen.vhdl_writer import FIXED_POINT_PACKAGE, VhdlWriter, generate_cone_entity
from repro.ir.dfg import build_dfg_from_cone
from repro.ir.operators import DataFormat
from repro.symbolic.cone_expression import ConeExpressionBuilder


class TestNaming:
    def test_invalid_characters_replaced(self):
        assert vhdl_identifier("my-signal[3]") == "my_signal_3"

    def test_leading_digit_prefixed(self):
        assert vhdl_identifier("3x3_kernel").startswith("s_")

    def test_keywords_suffixed(self):
        assert vhdl_identifier("signal") == "signal_i"
        assert vhdl_identifier("entity") == "entity_i"

    def test_empty_name_fallback(self):
        assert vhdl_identifier("!!!") == "sig"

    def test_signal_name_stable(self):
        assert signal_name("r", 7) == "r_7"


@pytest.fixture(scope="module")
def igf_cone_module(igf_kernel):
    cone = ConeExpressionBuilder(igf_kernel).build(2, 2)
    graph = build_dfg_from_cone(cone)
    module = VhdlWriter(DataFormat.FIXED16, fractional_bits=10).generate(graph)
    return cone, graph, module


class TestConeEntity:
    def test_entity_structure(self, igf_cone_module):
        _, graph, module = igf_cone_module
        code = module.code
        assert f"entity {module.entity_name} is" in code
        assert "architecture rtl of" in code
        assert code.count("end architecture rtl;") == 1
        assert "use ieee.numeric_std.all;" in code

    def test_ports_match_dfg(self, igf_cone_module):
        _, graph, module = igf_cone_module
        assert len(module.input_ports) == len(graph.input_nodes)
        assert len(module.output_ports) == len(graph.output_nodes)
        for port in module.input_ports + module.output_ports:
            assert port in module.code

    def test_every_operation_becomes_a_signal_assignment(self, igf_cone_module):
        _, graph, module = igf_cone_module
        assignments = re.findall(r"^\s+r_\d+ <= ", module.code, re.MULTILINE)
        assert len(assignments) == graph.operation_count()

    def test_registers_reported(self, igf_cone_module):
        _, graph, module = igf_cone_module
        assert module.register_count >= graph.register_count
        assert module.pipeline_stages >= 1

    def test_constants_are_quantised(self, igf_kernel):
        cone = ConeExpressionBuilder(igf_kernel).build(1, 1)
        graph = build_dfg_from_cone(cone)
        module = VhdlWriter(DataFormat.FIXED16, fractional_bits=8).generate(graph)
        # 0.25 with 8 fractional bits -> 64
        assert "to_signed(64, 16)" in module.code

    def test_generate_cone_entity_wrapper(self, igf_kernel):
        cone = ConeExpressionBuilder(igf_kernel).build(1, 1)
        graph = build_dfg_from_cone(cone)
        module = generate_cone_entity(graph, DataFormat.FIXED32)
        assert "signed(31 downto 0)" in module.code

    def test_support_package_present(self):
        assert "package isl_fixed_pkg" in FIXED_POINT_PACKAGE
        assert "function divide_fixed" in FIXED_POINT_PACKAGE


class TestDivSqrtTemplates:
    def test_chambolle_cone_uses_support_functions(self, chambolle_kernel):
        cone = ConeExpressionBuilder(chambolle_kernel).build(1, 1)
        graph = build_dfg_from_cone(cone)
        module = VhdlWriter(DataFormat.FIXED32).generate(graph)
        assert "divide_fixed(" in module.code
        assert "sqrt_fixed(" in module.code


class TestTopLevel:
    def test_toplevel_instantiates_every_cone(self, igf_kernel):
        architecture = ConeArchitecture(
            kernel_name="blur", window_side=3, level_depths=[2, 2, 1],
            cone_counts={2: 2, 1: 1}, radius=1)
        code = generate_architecture_toplevel(
            architecture, entity_names={2: "blur_d2", 1: "blur_d1"})
        assert code.count("entity work.blur_d2") == 2
        assert code.count("entity work.blur_d1") == 1
        assert "level0_buffer" in code
        assert "TILE_IN_SIDE : natural := " in code

    def test_missing_entity_name_rejected(self, igf_kernel):
        architecture = ConeArchitecture(
            kernel_name="blur", window_side=3, level_depths=[2],
            cone_counts={2: 1}, radius=1)
        with pytest.raises(KeyError):
            generate_architecture_toplevel(architecture, entity_names={})


class TestTestbench:
    def test_testbench_embeds_expected_values(self, igf_kernel):
        cone = ConeExpressionBuilder(igf_kernel).build(1, 1)
        graph = build_dfg_from_cone(cone)
        module = VhdlWriter(DataFormat.FIXED16, fractional_bits=10).generate(graph)
        stimulus = {node.name: 0.5 for node in graph.input_nodes}
        code = generate_testbench(module, graph, [stimulus],
                                  data_width=16, fractional_bits=10)
        assert f"dut : entity work.{module.entity_name}" in code
        assert "assert abs(" in code
        # the blur of a constant 0.5 frame is 0.5 -> quantised to 512
        assert "512" in code
