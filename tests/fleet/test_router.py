"""Fleet router tests: digest identity across fleet sizes and submission
orders, cross-worker store warming, failover replay, load shedding with
client retry recovery, admission, aggregation, HTTP transport, CLI."""

import hashlib
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import Session, Workload
from repro.api.registry import create_backend, list_backends
from repro.fleet import AdmissionPolicy, FleetRouter, routing_token
from repro.service import (
    AdmissionDeniedError,
    FleetOverloadedError,
    QueueFullError,
    ReproClient,
)

SMALL = dict(iterations=4, window_sides=(1, 2, 3), max_depth=2,
             max_cones_per_depth=3, frame_width=320, frame_height=240)

# chosen so the size-2 ring splits them across both workers (jacobi owns
# a worker-1 segment; the other three hash to worker-0)
NAMES = ["blur", "erode", "dilate", "jacobi"]


def workload(name="blur", **overrides):
    return Workload.from_algorithm(name, **{**SMALL, **overrides})


def digest(result):
    return hashlib.sha256(json.dumps(result.to_dict(),
                                     sort_keys=True).encode()).hexdigest()


@pytest.fixture(scope="module")
def reference_digests(tmp_path_factory):
    """Direct Session.run digests (and a warmed store all fleet tests
    reuse, so each workload synthesizes exactly once per module)."""
    store = tmp_path_factory.mktemp("fleet-store")
    session = Session(store=store)
    return store, {name: digest(session.run(workload(name)))
                   for name in NAMES}


class TestDigestIdentity:
    @pytest.mark.parametrize("size,order", [
        (1, NAMES),
        (2, list(reversed(NAMES))),
        (4, [NAMES[2], NAMES[0], NAMES[3], NAMES[1]]),
    ])
    def test_fleet_matches_direct_session_at_any_size_and_order(
            self, reference_digests, size, order):
        store, reference = reference_digests
        with FleetRouter.local(size, store=store,
                               healthcheck_interval_s=0) as fleet:
            client = ReproClient(fleet)
            handles = [(name, client.submit(workload(name)))
                       for name in order]
            for name, handle in handles:
                assert digest(handle.result(timeout=120)) \
                    == reference[name]

    def test_placement_is_deterministic_across_fleets(self, tmp_path):
        # two independent same-shape fleets place every key identically,
        # and on >1 worker (the ring genuinely spreads this key set)
        placements = []
        for _ in range(2):
            with FleetRouter.local(4, store=tmp_path,
                                   healthcheck_interval_s=0) as fleet:
                client = ReproClient(fleet)
                placements.append(
                    {name: client.submit(workload(name)).status()["worker"]
                     for name in NAMES})
        assert placements[0] == placements[1]
        assert len(set(placements[0].values())) > 1

    def test_same_key_lands_on_one_worker_and_coalesces(self, tmp_path):
        # paused workers: submissions queue deterministically
        with FleetRouter.local(2, store=tmp_path,
                               healthcheck_interval_s=0,
                               start=False) as fleet:
            client = ReproClient(fleet)
            first = client.submit(workload())
            second = client.submit(workload())
            assert not first.coalesced and second.coalesced
            assert fleet.status(first.id)["worker"] \
                == fleet.status(second.id)["worker"]
            for member in fleet.membership.all():
                member.server.start()
            assert digest(first.result(timeout=120)) \
                == digest(second.result(timeout=120))


class TestStoreWarming:
    def test_worker_b_serves_worker_a_synthesis_from_disk(self, tmp_path):
        target = workload("erode")
        # "worker A": a direct store-backed session synthesizes once
        warm_session = Session(store=tmp_path)
        reference = digest(warm_session.run(target))
        assert warm_session.stats.synthesis_runs > 0
        # "worker B": every fleet worker shares the same store; whichever
        # owns the key serves the characterization from disk
        with FleetRouter.local(2, store=tmp_path,
                               healthcheck_interval_s=0) as fleet:
            client = ReproClient(fleet)
            assert digest(client.run(target, timeout=120)) == reference
            stats = fleet.stats()
            assert stats["store_shared"] is True
            assert stats["aggregate"]["synthesis_runs"] == 0
            assert stats["aggregate"]["store_disk_hits"] >= 1
            owner = [entry for entry in stats["workers"].values()
                     if entry["jobs_routed"] == 1]
            assert len(owner) == 1
            assert owner[0]["stats"]["session"]["store_disk_hits"] >= 1
            assert owner[0]["stats"]["session"]["synthesis_runs"] == 0


class TestFailover:
    def test_killing_a_worker_mid_burst_loses_zero_jobs(
            self, reference_digests):
        store, reference = reference_digests
        with FleetRouter.local(2, store=store, healthcheck_interval_s=0,
                               start=False) as fleet:
            client = ReproClient(fleet)
            handles = {name: client.submit(workload(name))
                       for name in NAMES}
            by_worker = {}
            for name, handle in handles.items():
                by_worker.setdefault(
                    fleet.status(handle.id)["worker"], []).append(name)
            assert len(by_worker) == 2, (
                "test needs both workers owning jobs; placement census: "
                f"{by_worker}")
            victim = max(by_worker, key=lambda w: len(by_worker[w]))
            survivor = next(w for w in by_worker if w != victim)
            fleet.membership.get(survivor).server.start()
            # kill the victim with its jobs still queued
            fleet.membership.get(victim).server.close(drain=False)
            swept = fleet.check_workers()
            assert swept["newly_dead"] == [victim]
            # zero jobs lost: every result arrives, digest-identical
            for name, handle in handles.items():
                assert digest(handle.result(timeout=120)) \
                    == reference[name]
            stats = fleet.stats()
            assert stats["router"]["replays"] >= len(by_worker[victim])
            assert stats["membership"]["deaths"] == 1
            # only the victim's jobs moved: the survivor's jobs never
            # changed worker (the consistent-hash rebalance guarantee)
            for name in by_worker[survivor]:
                assert fleet.status(handles[name].id)["worker"] == survivor
            for name in by_worker[victim]:
                assert fleet.status(handles[name].id)["worker"] == survivor

    def test_result_waiter_replays_without_a_healthcheck_sweep(
            self, reference_digests):
        # no check_workers() call: the chunked result() wait itself
        # notices the death, probes, and replays
        store, reference = reference_digests
        with FleetRouter.local(2, store=store, healthcheck_interval_s=0,
                               start=False) as fleet:
            client = ReproClient(fleet)
            handle = client.submit(workload())
            victim = fleet.status(handle.id)["worker"]
            survivor = next(m.name for m in fleet.membership.all()
                            if m.name != victim)
            fleet.membership.get(survivor).server.start()
            fleet.membership.get(victim).server.close(drain=False)
            assert digest(handle.result(timeout=120)) \
                == reference["blur"]

    def test_all_workers_dead_sheds_with_retry_after(self, tmp_path):
        with FleetRouter.local(1, store=tmp_path,
                               healthcheck_interval_s=0) as fleet:
            fleet.membership.mark_dead("worker-0")
            with pytest.raises(QueueFullError) as caught:
                fleet.submit(workload())
            assert caught.value.retry_after_s > 0


class TestLoadShedding:
    def test_saturated_worker_sheds_and_client_retry_recovers(
            self, reference_digests):
        store, reference = reference_digests
        with FleetRouter.local(1, store=store, max_pending=1,
                               healthcheck_interval_s=0,
                               start=False) as fleet:
            blocker = ReproClient(fleet, retries=0).submit(workload())
            # the queue is full; a no-retry client sees the raw shed
            with pytest.raises(QueueFullError) as caught:
                ReproClient(fleet, retries=0).submit(workload("erode"))
            assert caught.value.retry_after_s > 0
            shed_before = fleet.stats()["aggregate"]["shed"]
            assert shed_before >= 1

            # a retrying client recovers once the worker drains
            retrying = ReproClient(fleet, retries=6,
                                   backoff_base_s=0.05,
                                   backoff_cap_s=0.2)
            unblock = threading.Timer(
                0.15, fleet.membership.get("worker-0").server.start)
            unblock.start()
            try:
                handle = retrying.submit(workload("erode"))
            finally:
                unblock.join()
            assert digest(handle.result(timeout=120)) \
                == reference["erode"]
            assert digest(blocker.result(timeout=120)) \
                == reference["blur"]

    def test_retry_budget_exhaustion_is_typed(self, tmp_path):
        with FleetRouter.local(1, store=tmp_path, max_pending=1,
                               healthcheck_interval_s=0,
                               start=False) as fleet:
            ReproClient(fleet, retries=0).submit(workload())
            impatient = ReproClient(fleet, retries=2,
                                    backoff_base_s=0.01,
                                    backoff_cap_s=0.02)
            with pytest.raises(FleetOverloadedError):
                impatient.submit(workload("erode"))
            # never started: drop the queued job instead of draining
            fleet.close(drain=False)

    def test_router_inflight_bound_sheds(self, tmp_path):
        with FleetRouter.local(1, store=tmp_path, max_inflight=1,
                               healthcheck_interval_s=0,
                               start=False) as fleet:
            ReproClient(fleet, retries=0).submit(workload())
            with pytest.raises(QueueFullError):
                ReproClient(fleet, retries=0).submit(workload("erode"))
            fleet.close(drain=False)


class TestAdmission:
    def test_guest_default_denies_interactive_fleet_wide(self, tmp_path):
        policy = AdmissionPolicy(default_role="guest")
        with FleetRouter.local(1, store=tmp_path, policy=policy,
                               healthcheck_interval_s=0,
                               start=False) as fleet:
            client = ReproClient(fleet)
            with pytest.raises(AdmissionDeniedError):
                client.submit(workload(), priority="interactive")
            with pytest.raises(AdmissionDeniedError):
                client.submit(workload(), priority="interactive",
                              role="guest")
            handle = client.submit(workload(), priority="interactive",
                                   role="operator")
            assert fleet.status(handle.id)["priority"] == "interactive"
            counters = fleet.stats()["admission"]
            assert counters["denied"] == 2 and counters["admitted"] == 1
            fleet.close(drain=False)


class TestHttpFleet:
    @pytest.fixture()
    def http_fleet(self, reference_digests):
        store, reference = reference_digests
        fleet = FleetRouter.local(2, store=store,
                                  healthcheck_interval_s=0)
        host, port = fleet.serve_http("127.0.0.1", 0)
        yield fleet, f"http://{host}:{port}", reference
        fleet.close(drain=False)

    def test_http_round_trip_digest_identical(self, http_fleet):
        _fleet, url, reference = http_fleet
        client = ReproClient(url)
        assert digest(client.run(workload(), timeout=120)) \
            == reference["blur"]

    def test_http_shed_carries_503_and_retry_after(self, tmp_path):
        with FleetRouter.local(1, store=tmp_path, max_pending=1,
                               healthcheck_interval_s=0,
                               start=False) as fleet:
            host, port = fleet.serve_http("127.0.0.1", 0)
            url = f"http://{host}:{port}"
            ReproClient(url, retries=0).submit(workload())
            body = json.dumps(
                {"workload": workload("erode").to_dict()}).encode()
            request = urllib.request.Request(
                url + "/submit", data=body,
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(request, timeout=10)
            assert caught.value.code == 503
            assert float(caught.value.headers["Retry-After"]) >= 1
            payload = json.loads(caught.value.read().decode())
            assert payload["kind"] == "QueueFullError"
            assert payload["retry_after_s"] > 0
            fleet.close(drain=False)

    def test_http_admission_denial_is_403(self, tmp_path):
        policy = AdmissionPolicy(default_role="guest")
        with FleetRouter.local(1, store=tmp_path, policy=policy,
                               healthcheck_interval_s=0,
                               start=False) as fleet:
            host, port = fleet.serve_http("127.0.0.1", 0)
            client = ReproClient(f"http://{host}:{port}")
            with pytest.raises(AdmissionDeniedError):
                client.submit(workload(), priority="interactive")
            fleet.close(drain=False)

    def test_stats_and_healthz_and_metrics_aggregate(self, http_fleet):
        fleet, url, _reference = http_fleet
        ReproClient(url).run(workload(), timeout=120)
        stats = ReproClient(url).stats()
        assert stats["router"]["routed"] >= 1
        assert stats["membership"]["workers_alive"] == 2
        assert set(stats["workers"]) == {"worker-0", "worker-1"}
        assert stats["aggregate"]["completed"] >= 1
        assert stats["store_shared"] is True
        health = ReproClient(url).healthz()
        assert health["ok"] and health["workers_alive"] == 2
        text = ReproClient(url).metrics()
        # routed jobs are a lifetime total: typed counter, not gauge
        assert "# TYPE repro_fleet_router_routed counter" in text
        assert "repro_fleet_membership_workers_alive 2" in text
        # per-worker queue gauges flatten into the same exposition
        assert "repro_fleet_workers_worker_0_stats_queue_submitted" in text

    def test_worker_metrics_endpoint(self, http_fleet):
        fleet, _url, _reference = http_fleet
        worker = fleet.membership.get("worker-0")
        text = worker.client.metrics()
        assert "# TYPE repro_queue_submitted counter" in text
        assert "repro_uptime_s" in text


class TestRegistration:
    def test_handshake_records_both_sides(self, tmp_path):
        with FleetRouter.local(2, store=tmp_path,
                               healthcheck_interval_s=0) as fleet:
            for member in fleet.membership.all():
                assert member.registration["ok"]
                assert member.registration["worker_id"] == member.name
                worker_stats = member.server.stats()
                assert worker_stats["fleet"]["member_name"] == member.name
            assert fleet.stats()["store_shared"] is True

    def test_worker_announce_joins_a_running_router(self, tmp_path):
        from repro.service import ReproServer
        with FleetRouter.local(1, store=tmp_path,
                               healthcheck_interval_s=0) as fleet:
            worker = ReproServer(store=tmp_path, worker_id="late-worker")
            try:
                host, port = worker.serve_http("127.0.0.1", 0)
                reply = fleet.register(
                    {"url": f"http://{host}:{port}",
                     "name": "late-worker"})
                assert reply["ok"] and reply["workers_total"] == 2
                assert "late-worker" in fleet.membership.ring
                assert fleet.membership.get(
                    "late-worker").registration["worker_id"] \
                    == "late-worker"
            finally:
                worker.close(drain=False)

    def test_registration_requires_a_url(self, tmp_path):
        with FleetRouter.local(1, store=tmp_path,
                               healthcheck_interval_s=0) as fleet:
            with pytest.raises(ValueError, match="url"):
                fleet.register({"name": "nameless"})


class TestRegistryAndCli:
    def test_fleet_backend_is_registered(self):
        assert "fleet" in list_backends("service")["service"]

    def test_create_backend_builds_a_router(self, tmp_path):
        from repro.service import ReproServer
        worker = ReproServer(store=tmp_path)
        router = create_backend("service", "fleet", workers=[worker],
                                healthcheck_interval_s=0)
        try:
            assert router.healthz()["ok"]
        finally:
            router.close(drain=False)

    def test_cli_fleet_and_submit_round_trip(self, reference_digests,
                                             capsys, monkeypatch):
        from repro.api.cli import main as cli_main
        from repro.api.results import FlowResult

        store, reference = reference_digests
        # drive cmd_fleet on a thread (it blocks in router.wait());
        # capture the ephemeral binding through serve_http
        bound = {}
        original_serve = FleetRouter.serve_http

        def capture_serve(self, host, port):
            address = original_serve(self, host, port)
            bound["url"] = "http://{}:{}".format(*address)
            return address

        monkeypatch.setattr(FleetRouter, "serve_http", capture_serve)
        thread = threading.Thread(
            target=cli_main,
            args=(["fleet", "--workers", "2", "--port", "0",
                   "--store", str(store),
                   "--healthcheck-interval", "0"],),
            daemon=True)
        thread.start()
        deadline = time.monotonic() + 30
        while "url" not in bound and time.monotonic() < deadline:
            time.sleep(0.02)
        assert "url" in bound, "fleet CLI never bound its port"
        capsys.readouterr()  # drop the CLI's startup banner
        try:
            code = cli_main([
                "submit", "blur", "--fleet", bound["url"],
                "--frame", "320x240", "--iterations", "4",
                "--windows", "1,2,3", "--max-depth", "2",
                "--max-cones", "3", "--json"])
            assert code == 0
            payload = json.loads(capsys.readouterr().out)
            assert digest(FlowResult.from_dict(payload)) \
                == reference["blur"]
        finally:
            ReproClient(bound["url"]).shutdown(drain=False)
            thread.join(timeout=30)
        assert not thread.is_alive()
