"""Consistent-hash ring tests: determinism, rebalance minimality,
placement as a pure function of (key, membership)."""

import random

import pytest

from repro.api.workload import Workload
from repro.fleet.ring import HashRing, routing_token

SMALL = dict(iterations=4, window_sides=(1, 2, 3), max_depth=2,
             max_cones_per_depth=3, frame_width=320, frame_height=240)


def workload(name="blur", **overrides):
    return Workload.from_algorithm(name, **{**SMALL, **overrides})


def tokens(count=200, seed=7):
    rng = random.Random(seed)
    return [f"token-{rng.randrange(10 ** 9)}" for _ in range(count)]


class TestRingBasics:
    def test_empty_ring_has_no_owner(self):
        ring = HashRing()
        assert ring.preference("anything") == []
        with pytest.raises(LookupError):
            ring.owner("anything")

    def test_membership_is_idempotent_and_sorted(self):
        ring = HashRing(["b", "a"])
        ring.add("a")  # no-op
        ring.remove("missing")  # no-op
        assert ring.members == ("a", "b")
        assert len(ring) == 2 and "a" in ring and "c" not in ring

    def test_replicas_validated(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)
        with pytest.raises(ValueError):
            HashRing([""])


class TestDeterminism:
    def test_owner_is_independent_of_insertion_order(self):
        members = ["worker-0", "worker-1", "worker-2", "worker-3"]
        forward = HashRing(members)
        backward = HashRing(reversed(members))
        for token in tokens():
            assert forward.owner(token) == backward.owner(token)
            assert (forward.preference(token)
                    == backward.preference(token))

    def test_owner_is_stable_across_ring_instances(self):
        # placement must agree across processes: sha256, not hash()
        a = HashRing(["w0", "w1", "w2"])
        b = HashRing(["w0", "w1", "w2"])
        assert [a.owner(t) for t in tokens()] \
            == [b.owner(t) for t in tokens()]

    def test_routing_token_is_key_identity(self):
        # same characterization key (run knobs differ) -> same token;
        # different kernels -> different tokens
        assert routing_token(workload()) == routing_token(
            workload(constraints=None))
        assert routing_token(workload("blur")) \
            != routing_token(workload("erode"))


class TestRebalanceMinimality:
    def test_removal_moves_only_the_dead_members_segments(self):
        members = ["worker-0", "worker-1", "worker-2", "worker-3"]
        ring = HashRing(members)
        sample = tokens(500)
        before = {token: ring.owner(token) for token in sample}
        ring.remove("worker-2")
        for token, owner in before.items():
            if owner == "worker-2":
                # the orphaned segment falls to the old ring successor
                assert ring.owner(token) == \
                    HashRing(members).preference(token)[1]
            else:
                # every other key keeps its owner — the consistent-hash
                # guarantee the failover design rests on
                assert ring.owner(token) == owner

    def test_addition_steals_segments_only_for_itself(self):
        ring = HashRing(["worker-0", "worker-1"])
        sample = tokens(500)
        before = {token: ring.owner(token) for token in sample}
        ring.add("worker-2")
        moved = {token for token, owner in before.items()
                 if ring.owner(token) != owner}
        assert all(ring.owner(token) == "worker-2" for token in moved)
        # with 64 replicas the newcomer takes a substantive share
        assert 0 < len(moved) < len(sample)

    def test_remove_then_readd_restores_exact_placement(self):
        ring = HashRing(["w0", "w1", "w2"])
        sample = tokens()
        before = [ring.owner(token) for token in sample]
        ring.remove("w1")
        ring.add("w1")
        assert [ring.owner(token) for token in sample] == before


class TestPreferenceAndCensus:
    def test_preference_lists_every_member_once_owner_first(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        for token in tokens(50):
            preference = ring.preference(token)
            assert preference[0] == ring.owner(token)
            assert sorted(preference) == ["w0", "w1", "w2", "w3"]

    def test_preference_count_caps_the_walk(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        assert len(ring.preference("t", count=2)) == 2

    def test_successor_failover_equals_ring_without_the_dead_member(self):
        # preference[1] before a death == owner after it: the walk the
        # router performs is exactly the post-rebalance placement
        ring = HashRing(["w0", "w1", "w2"])
        for token in tokens(100):
            owner, successor = ring.preference(token, count=2)
            survivor_ring = HashRing(["w0", "w1", "w2"])
            survivor_ring.remove(owner)
            assert survivor_ring.owner(token) == successor

    def test_segment_counts_cover_every_member_and_token(self):
        ring = HashRing(["w0", "w1", "w2"])
        census = ring.segment_counts(tokens(300))
        assert set(census) == {"w0", "w1", "w2"}
        assert sum(census.values()) == 300
        # virtual nodes keep the split from degenerating entirely
        assert all(count > 0 for count in census.values())
