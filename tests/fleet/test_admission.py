"""Admission-control tests: the role -> priority-class capability check."""

import pytest

from repro.fleet.admission import DEFAULT_ROLES, AdmissionPolicy
from repro.service.jobs import AdmissionDeniedError, parse_priority


class TestDefaultLattice:
    def test_operator_holds_every_class(self):
        policy = AdmissionPolicy()
        for name in ("interactive", "batch", "background"):
            assert policy.admit("operator", name) == parse_priority(name)

    def test_guest_holds_only_background(self):
        policy = AdmissionPolicy()
        assert policy.admit("guest", "background") \
            == parse_priority("background")
        for name in ("interactive", "batch"):
            with pytest.raises(AdmissionDeniedError):
                policy.admit("guest", name)

    def test_user_sits_between(self):
        policy = AdmissionPolicy()
        assert policy.admit("user", "batch") == parse_priority("batch")
        with pytest.raises(AdmissionDeniedError):
            policy.admit("user", "interactive")

    def test_lattice_is_a_chain_of_supersets(self):
        grants = {role: set(classes)
                  for role, classes in DEFAULT_ROLES.items()}
        assert grants["guest"] < grants["user"] < grants["operator"]


class TestDefaultsAndUnknowns:
    def test_missing_role_uses_the_default_role(self):
        # single-tenant compatibility: no role behaves like the worker tier
        assert AdmissionPolicy().admit(None, "interactive") \
            == parse_priority("interactive")
        with pytest.raises(AdmissionDeniedError):
            AdmissionPolicy(default_role="guest").admit(None, "interactive")

    def test_missing_priority_uses_the_default_class(self):
        policy = AdmissionPolicy()
        assert policy.admit("operator", None) == parse_priority(None)

    def test_unknown_role_is_denied_outright(self):
        with pytest.raises(AdmissionDeniedError, match="unknown role"):
            AdmissionPolicy().admit("nobody", "background")

    def test_role_matching_is_case_insensitive(self):
        policy = AdmissionPolicy()
        assert policy.admit(" Operator ", "interactive") \
            == parse_priority("interactive")

    def test_undefined_default_role_rejected_at_construction(self):
        with pytest.raises(ValueError, match="default_role"):
            AdmissionPolicy(default_role="root")


class TestCustomPoliciesAndCounters:
    def test_custom_grant_table(self):
        policy = AdmissionPolicy(
            roles={"ci": ("batch",)}, default_role="ci")
        assert policy.admit(None, "batch") == parse_priority("batch")
        with pytest.raises(AdmissionDeniedError):
            policy.admit("ci", "interactive")
        with pytest.raises(AdmissionDeniedError):
            policy.admit("operator", "batch")  # not in this table

    def test_counters_track_admissions_and_denials(self):
        policy = AdmissionPolicy()
        policy.admit("operator", "batch")
        with pytest.raises(AdmissionDeniedError):
            policy.admit("guest", "interactive")
        assert policy.counters() == {"admitted": 1, "denied": 1}

    def test_roles_view_is_json_ready(self):
        view = AdmissionPolicy().roles()
        assert view["guest"] == ["background"]
        assert sorted(view) == ["guest", "operator", "user"]
