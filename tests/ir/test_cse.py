"""Unit tests for CSE and dead-code elimination on DFGs."""

from repro.ir.cse import dead_code_elimination, eliminate_common_subexpressions
from repro.ir.dfg import DataflowGraph
from repro.symbolic.expression import OpKind


def redundant_graph():
    """A graph with a duplicated (a+b) subexpression and a dead node."""
    graph = DataflowGraph("redundant")
    a = graph.add_input("a")
    b = graph.add_input("b")
    add1 = graph.add_op(OpKind.ADD, [a, b])
    add2 = graph.add_op(OpKind.ADD, [a, b])       # duplicate
    add3 = graph.add_op(OpKind.ADD, [b, a])       # commutative duplicate
    dead = graph.add_op(OpKind.SUB, [a, b])       # not reachable from outputs
    mul = graph.add_op(OpKind.MUL, [add1, add2])
    graph.add_output(mul, "y")
    graph.add_output(add3, "z")
    return graph


def test_cse_merges_structural_duplicates():
    graph = redundant_graph()
    optimized, eliminated = eliminate_common_subexpressions(graph)
    assert eliminated == 2
    assert optimized.operation_count() == graph.operation_count() - 2
    optimized.validate()


def test_cse_merges_duplicate_constants():
    graph = DataflowGraph()
    a = graph.add_input("a")
    c1 = graph.add_const(2.0)
    c2 = graph.add_const(2.0)
    m1 = graph.add_op(OpKind.MUL, [a, c1])
    m2 = graph.add_op(OpKind.MUL, [a, c2])
    graph.add_output(m1, "y1")
    graph.add_output(m2, "y2")
    optimized, eliminated = eliminate_common_subexpressions(graph)
    assert eliminated == 2  # duplicate constant and duplicate multiply
    assert len(optimized.const_nodes) == 1


def test_cse_preserves_semantics():
    graph = redundant_graph()
    optimized, _ = eliminate_common_subexpressions(graph)
    inputs = {"a": 2.0, "b": 5.0}
    assert graph.evaluate(inputs) == optimized.evaluate(inputs)


def test_dce_removes_unreachable_nodes():
    graph = redundant_graph()
    cleaned, removed = dead_code_elimination(graph)
    assert removed == 1
    assert cleaned.operation_count() == graph.operation_count() - 1
    assert cleaned.evaluate({"a": 1.0, "b": 2.0}) == graph.evaluate({"a": 1.0, "b": 2.0})


def test_cone_lowered_graph_is_already_maximally_shared(igf_kernel):
    """Hash-consing in the symbolic layer means CSE finds nothing to merge."""
    from repro.ir.dfg import build_dfg_from_cone
    from repro.symbolic.cone_expression import ConeExpressionBuilder

    cone = ConeExpressionBuilder(igf_kernel).build(3, 2)
    graph = build_dfg_from_cone(cone)
    _, eliminated = eliminate_common_subexpressions(graph)
    assert eliminated == 0
