"""Unit tests for ASAP/ALAP and pipeline scheduling."""

import pytest

from repro.ir.dfg import DataflowGraph, build_dfg_from_cone
from repro.ir.operators import DataFormat, default_library
from repro.ir.scheduling import (
    alap_schedule,
    asap_schedule,
    critical_path_ns,
    pipeline_schedule,
)
from repro.symbolic.cone_expression import ConeExpressionBuilder
from repro.symbolic.expression import OpKind


def chain_graph(length=4):
    """A linear chain of additions (critical path grows with length)."""
    graph = DataflowGraph("chain")
    node = graph.add_input("x0")
    for index in range(length):
        other = graph.add_input(f"x{index + 1}")
        node = graph.add_op(OpKind.ADD, [node, other])
    graph.add_output(node, "y")
    return graph


def test_critical_path_scales_with_chain_length():
    library = default_library(DataFormat.FIXED16)
    short = critical_path_ns(chain_graph(2), library)
    long = critical_path_ns(chain_graph(8), library)
    assert long == pytest.approx(4 * short)


def test_asap_before_alap():
    graph = chain_graph(5)
    library = default_library()
    asap = asap_schedule(graph, library)
    alap = alap_schedule(graph, library)
    for node in graph.nodes():
        finish = asap[node.node_id]
        latest_start = alap[node.node_id]
        assert latest_start >= finish - critical_path_ns(graph, library) - 1e-9


def test_pipeline_schedule_meets_clock_period():
    graph = chain_graph(10)
    library = default_library(DataFormat.FIXED16)
    period = 4.0
    schedule = pipeline_schedule(graph, period, library)
    assert schedule.pipeline_stages >= 2
    # each stage fits in the period, so the achievable frequency is at least
    # the requested one
    assert schedule.max_frequency_hz >= 1e9 / period * 0.99


def test_pipeline_registers_counted():
    graph = chain_graph(10)
    schedule = pipeline_schedule(graph, 4.0, default_library(DataFormat.FIXED16))
    assert schedule.pipeline_register_count > 0


def test_deeper_cones_have_longer_latency(igf_kernel):
    builder = ConeExpressionBuilder(igf_kernel)
    library = default_library(DataFormat.FIXED16)
    period = 10.3
    shallow = pipeline_schedule(build_dfg_from_cone(builder.build(1, 1)), period, library)
    deep = pipeline_schedule(build_dfg_from_cone(builder.build(1, 3)), period, library)
    assert deep.latency_cycles > shallow.latency_cycles
    assert deep.critical_path_ns > shallow.critical_path_ns


def test_invalid_clock_period_rejected():
    with pytest.raises(ValueError):
        pipeline_schedule(chain_graph(2), 0.0)


def test_single_operator_longer_than_period_gets_multiple_stages():
    graph = DataflowGraph()
    a = graph.add_input("a")
    b = graph.add_input("b")
    div = graph.add_op(OpKind.DIV, [a, b])
    graph.add_output(div, "q")
    library = default_library(DataFormat.FIXED32)
    spec = library.spec_for(OpKind.DIV)
    period = spec.delay_ns / 3.0
    schedule = pipeline_schedule(graph, period, library)
    assert schedule.pipeline_stages >= 3
