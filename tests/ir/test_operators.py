"""Unit tests for the operator catalog and resource vectors."""

import pytest

from repro.ir.operators import (
    DataFormat,
    OperatorLibrary,
    ResourceVector,
    default_library,
)
from repro.symbolic.expression import OpKind


class TestResourceVector:
    def test_addition_and_subtraction(self):
        a = ResourceVector(luts=100, ffs=50, dsps=2, brams=1)
        b = ResourceVector(luts=10, ffs=5, dsps=1, brams=0.5)
        total = a + b
        assert total.luts == 110 and total.dsps == 3
        diff = a - b
        assert diff.ffs == 45

    def test_scaling(self):
        v = ResourceVector(luts=10, ffs=20) * 3
        assert v.luts == 30 and v.ffs == 60
        assert (2 * ResourceVector(luts=5)).luts == 10

    def test_fits_in(self):
        small = ResourceVector(luts=100, ffs=100)
        big = ResourceVector(luts=1000, ffs=1000, dsps=10)
        assert small.fits_in(big)
        assert not big.fits_in(small)

    def test_utilisation_binding_resource(self):
        usage = ResourceVector(luts=50, dsps=8)
        capacity = ResourceVector(luts=1000, ffs=1000, dsps=10)
        assert usage.utilisation(capacity) == pytest.approx(0.8)

    def test_utilisation_with_missing_resource(self):
        usage = ResourceVector(brams=1)
        capacity = ResourceVector(luts=100, ffs=100)
        assert usage.utilisation(capacity) == float("inf")

    def test_str(self):
        assert "LUT" in str(ResourceVector(luts=5))


class TestDataFormat:
    def test_widths(self):
        assert DataFormat.FIXED16.width == 16
        assert DataFormat.FIXED32.width == 32
        assert DataFormat.FLOAT32.width == 32
        assert DataFormat.FIXED16.bytes == 2


class TestOperatorLibrary:
    @pytest.fixture(params=[DataFormat.FIXED16, DataFormat.FIXED32, DataFormat.FLOAT32])
    def library(self, request):
        return default_library(request.param)

    def test_every_op_kind_has_a_spec(self, library):
        for kind in OpKind:
            spec = library.spec_for(kind)
            assert spec.delay_ns > 0
            assert spec.resources.luts >= 0

    def test_constant_multiplication_is_cheaper(self, library):
        full = library.spec_for(OpKind.MUL, constant_operand=False)
        const = library.spec_for(OpKind.MUL, constant_operand=True)
        assert (const.resources.luts + 200 * const.resources.dsps
                <= full.resources.luts + 200 * full.resources.dsps)

    def test_constant_division_is_cheaper(self):
        library = default_library(DataFormat.FIXED16)
        assert (library.spec_for(OpKind.DIV, True).resources.luts
                < library.spec_for(OpKind.DIV, False).resources.luts)

    def test_register_cost_scales_with_width(self):
        narrow = default_library(DataFormat.FIXED16).register_resources
        wide = default_library(DataFormat.FIXED32).register_resources
        assert wide.ffs == 2 * narrow.ffs

    def test_wider_fixed_point_costs_more(self):
        narrow = default_library(DataFormat.FIXED16).spec_for(OpKind.ADD)
        wide = default_library(DataFormat.FIXED32).spec_for(OpKind.ADD)
        assert wide.resources.luts > narrow.resources.luts

    def test_division_is_most_expensive_fixed_op(self):
        library = default_library(DataFormat.FIXED16)
        div = library.spec_for(OpKind.DIV).resources.luts
        add = library.spec_for(OpKind.ADD).resources.luts
        assert div > 3 * add
