"""Unit tests for the dataflow graph."""

import pytest

from repro.ir.dfg import DataflowGraph, NodeKind, build_dfg_from_cone
from repro.symbolic.cone_expression import ConeExpressionBuilder
from repro.symbolic.expression import OpKind


def make_simple_graph():
    """(a + b) * 2 with the product also driving a second output."""
    graph = DataflowGraph("simple")
    a = graph.add_input("a")
    b = graph.add_input("b")
    two = graph.add_const(2.0)
    add = graph.add_op(OpKind.ADD, [a, b])
    mul = graph.add_op(OpKind.MUL, [add, two])
    graph.add_output(mul, "y")
    graph.add_output(add, "s")
    return graph


class TestConstruction:
    def test_counts(self):
        graph = make_simple_graph()
        assert len(graph.input_nodes) == 2
        assert len(graph.const_nodes) == 1
        assert graph.operation_count() == 2
        assert len(graph.output_nodes) == 2
        assert graph.register_count == 4  # 2 ops + 2 inputs

    def test_operation_histogram(self):
        histogram = make_simple_graph().operation_histogram()
        assert histogram == {OpKind.ADD: 1, OpKind.MUL: 1}

    def test_unknown_operand_rejected(self):
        graph = DataflowGraph()
        with pytest.raises(KeyError):
            graph.add_op(OpKind.ADD, [0, 1])
        with pytest.raises(KeyError):
            graph.add_output(99, "y")

    def test_users_tracking(self):
        graph = make_simple_graph()
        add_node = next(n for n in graph.operation_nodes if n.op_kind is OpKind.ADD)
        users = graph.users_of(add_node.node_id)
        assert len(users) == 2  # the multiply and the second output


class TestTraversal:
    def test_topological_order_respects_dependencies(self):
        graph = make_simple_graph()
        order = [n.node_id for n in graph.topological_order()]
        position = {nid: i for i, nid in enumerate(order)}
        for node in graph.nodes():
            for operand in node.operands:
                assert position[operand] < position[node.node_id]

    def test_duplicate_operand_is_handled(self):
        graph = DataflowGraph()
        a = graph.add_input("a")
        square = graph.add_op(OpKind.MUL, [a, a])
        graph.add_output(square, "y")
        assert len(graph.topological_order()) == 3
        graph.validate()

    def test_validate_checks_arity(self):
        graph = DataflowGraph()
        a = graph.add_input("a")
        node = graph.add_op(OpKind.ADD, [a, a])
        graph.node(node).operands = (a,)
        with pytest.raises(ValueError, match="expects 2 operands"):
            graph.validate()


class TestEvaluation:
    def test_evaluate_simple_graph(self):
        graph = make_simple_graph()
        outputs = graph.evaluate({"a": 3.0, "b": 4.0})
        assert outputs == {"y": 14.0, "s": 7.0}

    def test_missing_input_raises(self):
        with pytest.raises(KeyError):
            make_simple_graph().evaluate({"a": 1.0})


class TestLoweringFromCone:
    def test_lowering_preserves_counts(self, igf_kernel):
        cone = ConeExpressionBuilder(igf_kernel).build(2, 2)
        graph = build_dfg_from_cone(cone)
        assert graph.operation_count() == cone.operation_count
        assert len(graph.input_nodes) == cone.input_count
        assert len(graph.output_nodes) == cone.output_count

    def test_lowering_gives_unique_port_names(self, chambolle_kernel):
        cone = ConeExpressionBuilder(chambolle_kernel).build(2, 1)
        graph = build_dfg_from_cone(cone)
        input_names = [n.name for n in graph.input_nodes]
        output_names = [n.name for n in graph.output_nodes]
        assert len(set(input_names)) == len(input_names)
        assert len(set(output_names)) == len(output_names)

    def test_lowered_graph_validates(self, igf_kernel):
        cone = ConeExpressionBuilder(igf_kernel).build(3, 2)
        graph = build_dfg_from_cone(cone)
        graph.validate()

    def test_lowered_graph_evaluates_like_expressions(self, igf_kernel):
        from repro.symbolic.expression import evaluate
        cone = ConeExpressionBuilder(igf_kernel).build(1, 1)
        graph = build_dfg_from_cone(cone)
        inputs = {}
        bindings = {}
        for index, node in enumerate(graph.input_nodes):
            field, component, offset, level = node.port
            value = 0.5 + 0.1 * index
            inputs[node.name] = value
            bindings[(field, component, offset.dx, offset.dy, level)] = value
        dfg_outputs = graph.evaluate(inputs)
        expr_value = evaluate(next(iter(cone.outputs.values())), bindings)
        assert list(dfg_outputs.values())[0] == pytest.approx(expr_value)
