#!/usr/bin/env python
"""End-to-end smoke of the exploration service (``scripts/check.sh --service``).

Boots ``python -m repro serve`` as a real subprocess on an ephemeral port,
submits two workloads over HTTP, asserts both served results are
digest-identical to direct ``Session.run`` references, checks the stats
surface, and shuts the daemon down gracefully (exit code 0 required).

Usage::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.api import Session, Workload  # noqa: E402
from repro.service import ReproClient  # noqa: E402

#: Small knobs: the smoke verifies plumbing, not paper-scale numbers.
SMALL = dict(iterations=4, window_sides=(1, 2, 3), max_depth=2,
             max_cones_per_depth=3, frame_width=320, frame_height=240)

ADDRESS_PATTERN = re.compile(
    r"repro service listening on (http://[\d.]+:\d+)")


def digest(result) -> str:
    return hashlib.sha256(json.dumps(result.to_dict(),
                                     sort_keys=True).encode()).hexdigest()


def start_server() -> "tuple[subprocess.Popen, str]":
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.join(REPO_ROOT, "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--quiet"],
        env=env, cwd=REPO_ROOT, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, text=True)
    line = process.stdout.readline()
    match = ADDRESS_PATTERN.search(line)
    if match is None:
        process.kill()
        raise SystemExit(f"error: server did not announce its address "
                         f"(got {line!r})")
    return process, match.group(1)


def main() -> int:
    workloads = [Workload.from_algorithm("blur", **SMALL),
                 Workload.from_algorithm("jacobi", **SMALL)]
    print("computing direct-session reference digests...")
    reference = Session()
    expected = [digest(reference.run(each)) for each in workloads]

    print("starting `python -m repro serve --port 0` ...")
    process, url = start_server()
    try:
        client = ReproClient(url)
        health = client.healthz()
        assert health["ok"], f"unhealthy at startup: {health}"
        print(f"  serving at {url}")

        served = []
        for each in workloads:
            handle = client.submit(each, priority="interactive")
            served.append(digest(handle.result(timeout=120)))
        assert served == expected, (
            f"served digests diverged from direct Session.run:\n"
            f"  served:   {served}\n  expected: {expected}")
        print(f"  2 workloads served, digests identical to direct runs")

        stats = client.stats()
        assert stats["queue"]["completed"] == 2, stats["queue"]
        assert stats["scheduler"]["jobs_completed"] == 2
        assert stats["session"]["synthesis_runs"] >= 0
        print(f"  stats ok (batches={stats['scheduler']['batches']}, "
              f"coalesce_hit_rate="
              f"{stats['queue']['coalesce_hit_rate']:.2f})")

        client.shutdown(drain=True)
    except BaseException:
        process.kill()
        raise
    returncode = process.wait(timeout=30)
    assert returncode == 0, f"server exited with {returncode}"
    print("  clean shutdown (exit 0)")
    print("service smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
