#!/usr/bin/env python
"""End-to-end smoke of the fleet tier (``scripts/check.sh --fleet``).

Boots two ``python -m repro serve`` workers and one ``python -m repro
fleet`` router as real subprocesses on ephemeral ports — three separate
OS processes sharing one artifact-store directory — then:

* submits workloads through the router over HTTP and asserts every served
  result is digest-identical to a direct ``Session.run`` reference;
* asserts consistent-hash placement routed across the registered workers
  and that the router attests the shared store (``store_shared``);
* drains the whole fleet (router + both workers) and requires every
  process to exit 0.

Usage::

    PYTHONPATH=src python scripts/fleet_smoke.py
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.api import Session, Workload  # noqa: E402
from repro.service import ReproClient  # noqa: E402

#: Small knobs: the smoke verifies plumbing, not paper-scale numbers.
SMALL = dict(iterations=4, window_sides=(1, 2, 3), max_depth=2,
             max_cones_per_depth=3, frame_width=320, frame_height=240)

#: Spread across both workers of a 2-member ring (see tests/fleet).
ALGORITHMS = ["blur", "erode", "jacobi"]

WORKER_PATTERN = re.compile(
    r"repro service listening on (http://[\d.]+:\d+)")
ROUTER_PATTERN = re.compile(
    r"repro fleet listening on (http://[\d.]+:\d+)")


def digest(result) -> str:
    return hashlib.sha256(json.dumps(result.to_dict(),
                                     sort_keys=True).encode()).hexdigest()


def spawn(arguments, pattern):
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.join(REPO_ROOT, "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", *arguments],
        env=env, cwd=REPO_ROOT, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, text=True)
    line = process.stdout.readline()
    match = pattern.search(line)
    if match is None:
        process.kill()
        raise SystemExit(f"error: {arguments[0]} did not announce its "
                         f"address (got {line!r})")
    return process, match.group(1)


def main() -> int:
    workloads = [Workload.from_algorithm(name, **SMALL)
                 for name in ALGORITHMS]
    with tempfile.TemporaryDirectory(prefix="repro-fleet-smoke-") as store:
        print("computing direct-session reference digests...")
        expected = [digest(Session(store=store).run(each))
                    for each in workloads]

        print("starting 2 `repro serve` workers + 1 `repro fleet` "
              "router...")
        processes = []
        try:
            workers = []
            for index in range(2):
                process, url = spawn(
                    ["serve", "--port", "0", "--quiet",
                     "--store", store,
                     "--worker-id", f"smoke-worker-{index}"],
                    WORKER_PATTERN)
                processes.append(process)
                workers.append(url)
                print(f"  worker {index} at {url}")
            # NAME=URL pins the ring identity so the 3-key placement
            # split across both workers is deterministic run-to-run
            router_process, router_url = spawn(
                ["fleet", "--port", "0",
                 "--worker", f"worker-0={workers[0]}",
                 "--worker", f"worker-1={workers[1]}",
                 "--healthcheck-interval", "0.5"],
                ROUTER_PATTERN)
            processes.append(router_process)
            print(f"  router at {router_url}")

            client = ReproClient(router_url)
            health = client.healthz()
            assert health["ok"] and health["workers_alive"] == 2, health

            served = []
            for each in workloads:
                handle = client.submit(each, priority="interactive")
                served.append(digest(handle.result(timeout=180)))
            assert served == expected, (
                f"fleet digests diverged from direct Session.run:\n"
                f"  served:   {served}\n  expected: {expected}")
            print(f"  {len(workloads)} workloads served through the "
                  f"router, digests identical to direct runs")

            stats = client.stats()
            assert stats["router"]["routed"] == len(workloads), \
                stats["router"]
            assert stats["store_shared"] is True, stats["store_roots"]
            placement = {name: entry["jobs_routed"]
                         for name, entry in stats["workers"].items()}
            assert sum(placement.values()) == len(workloads), placement
            assert all(count > 0 for count in placement.values()), (
                f"placement did not spread across the fleet: {placement}")
            print(f"  placement {placement}, store_shared=True, "
                  f"aggregate synthesis_runs="
                  f"{stats['aggregate']['synthesis_runs']}")

            # drain the whole fleet: the router first (attach-mode fleets
            # leave worker lifecycles independent), then each worker
            client.shutdown(drain=True)
            returncode = router_process.wait(timeout=60)
            assert returncode == 0, f"router exited with {returncode}"
            for url in workers:
                ReproClient(url).shutdown(drain=True)
        except BaseException:
            for process in processes:
                process.kill()
            raise
        for process in processes:
            returncode = process.wait(timeout=60)
            assert returncode == 0, (
                f"pid {process.pid} exited with {returncode}")
        print(f"  clean whole-fleet drain ({len(processes)} processes "
              f"exited 0)")
    print("fleet smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
