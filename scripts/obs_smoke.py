#!/usr/bin/env python
"""Observability smoke (``scripts/check.sh --obs``).

Boots ``python -m repro serve`` as a real subprocess on an ephemeral
port and verifies the end-to-end observability surface across the
process boundary:

* a client-side root span rides the ``X-Repro-Trace`` header, so every
  server-side span (job, dispatch, stages) lands in the *caller's*
  trace — fetched back via ``GET /trace/<id>``;
* ``python -m repro trace`` exports the same trace as JSONL and Chrome
  ``trace_event`` JSON;
* ``GET /metrics`` parses under the strict Prometheus 0.0.4 validator
  (:func:`repro.obs.metrics.parse_exposition`) with monotone totals
  typed ``counter`` and the queue-wait histogram's full bucket family.

Usage::

    PYTHONPATH=src python scripts/obs_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.api import Workload  # noqa: E402
from repro.obs import trace  # noqa: E402
from repro.obs.metrics import parse_exposition  # noqa: E402
from repro.service import ReproClient  # noqa: E402

#: Small knobs: the smoke verifies plumbing, not paper-scale numbers.
SMALL = dict(iterations=4, window_sides=(1, 2, 3), max_depth=2,
             max_cones_per_depth=3, frame_width=320, frame_height=240)

ADDRESS_PATTERN = re.compile(
    r"repro service listening on (http://[\d.]+:\d+)")


def start_server() -> "tuple[subprocess.Popen, str]":
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.join(REPO_ROOT, "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--quiet"],
        env=env, cwd=REPO_ROOT, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, text=True)
    line = process.stdout.readline()
    match = ADDRESS_PATTERN.search(line)
    if match is None:
        process.kill()
        raise SystemExit(f"error: server did not announce its address "
                         f"(got {line!r})")
    return process, match.group(1)


def run_cli(*args: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.join(REPO_ROOT, "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    completed = subprocess.run(
        [sys.executable, "-m", "repro", *args], env=env, cwd=REPO_ROOT,
        capture_output=True, text=True)
    assert completed.returncode == 0, (
        f"`repro {' '.join(args)}` exited {completed.returncode}:\n"
        f"{completed.stderr}")
    return completed.stdout


def check_trace_surface(client: ReproClient, url: str) -> None:
    # a client-side root span crosses the process boundary in the header
    trace.enable()
    with trace.span("obs_smoke.submit") as root:
        handle = client.submit(Workload.from_algorithm("blur", **SMALL),
                               priority="interactive")
        handle.result(timeout=120)
    assert handle.trace_id == root.trace_id, (
        f"receipt trace {handle.trace_id} is not the caller's "
        f"{root.trace_id}: header propagation broke")
    payload = client.trace(root.trace_id)
    spans = payload["spans"]
    names = {span["name"] for span in spans}
    assert {"service.job", "scheduler.dispatch", "session.run"} <= names, \
        f"server-side trace incomplete: {sorted(names)}"
    assert any(name.startswith("stage.") for name in names), sorted(names)
    assert all(span["trace_id"] == root.trace_id for span in spans)
    job_span = next(span for span in spans
                    if span["name"] == "service.job")
    assert job_span["parent_id"] == root.span_id, (
        "the server-side job span does not parent under the caller's "
        "root: X-Repro-Trace was not adopted")
    print(f"  trace {root.trace_id[:12]}... spans over HTTP: "
          f"{len(spans)} server-side, joined to the client root")

    # the CLI fetches and exports the same trace
    index = run_cli("trace", "--server", url)
    assert root.trace_id in index, "trace index is missing the trace"
    jsonl = run_cli("trace", root.trace_id, "--server", url)
    lines = [json.loads(line) for line in jsonl.splitlines()]
    assert {line["span_id"] for line in lines} \
        == {span["span_id"] for span in spans}
    with tempfile.TemporaryDirectory() as scratch:
        out = os.path.join(scratch, "trace.json")
        run_cli("trace", root.trace_id, "--server", url, "--chrome",
                "-o", out)
        with open(out, "r", encoding="utf-8") as handle_:
            document = json.load(handle_)
    events = document["traceEvents"]
    assert len(events) == len(spans)
    assert all(event["ph"] == "X" for event in events)
    print(f"  CLI export ok (JSONL {len(lines)} spans, Chrome "
          f"{len(events)} events)")


def check_metrics_surface(client: ReproClient) -> None:
    text = client.metrics()
    families = parse_exposition(text)  # strict 0.0.4 validation
    for family, kind in (("repro_queue_submitted", "counter"),
                         ("repro_queue_pending", "gauge"),
                         ("repro_session_synthesis_runs", "counter"),
                         ("repro_service_queue_wait_seconds", "histogram"),
                         ("repro_session_stage_seconds", "histogram")):
        entry = families.get(family)
        assert entry is not None, f"/metrics is missing {family}"
        assert entry["type"] == kind, (
            f"{family} typed {entry['type']}, expected {kind}")
    waits = families["repro_service_queue_wait_seconds"]["samples"]
    count = next(value for name, _labels, value in waits
                 if name.endswith("_count"))
    assert count >= 1, "queue-wait histogram recorded no observations"
    print(f"  /metrics ok ({len(families)} families strictly parsed, "
          f"queue-wait count {count:.0f})")


def main() -> int:
    print("starting `python -m repro serve --port 0` ...")
    process, url = start_server()
    try:
        client = ReproClient(url)
        assert client.healthz()["ok"]
        print(f"  serving at {url}")
        check_trace_surface(client, url)
        check_metrics_surface(client)
        client.shutdown(drain=True)
    except BaseException:
        process.kill()
        raise
    finally:
        trace.disable()
    returncode = process.wait(timeout=30)
    assert returncode == 0, f"server exited with {returncode}"
    print("  clean shutdown (exit 0)")
    print("obs smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
