#!/usr/bin/env python
"""Benchmark runner: execute the ``benchmarks/bench_*`` workloads through the
batch API and emit a ``BENCH_<date>.json`` perf snapshot.

Each bench module times one stage of a Section-4 experiment; the expensive
shared artifact behind them is the full design-space exploration of each case
study.  This runner drives those explorations through
:meth:`repro.api.Session.run_many` (so characterizations are shared the way a
production deployment would share them), records wall time and synthesizer
accounting per workload, and maps every bench module to the workload(s) it
draws on.  The emitted snapshot gives future PRs a trajectory to compare
against.

Usage::

    PYTHONPATH=src python scripts/bench.py            # writes BENCH_<date>.json
    PYTHONPATH=src python scripts/bench.py -o out.json --pytest
    PYTHONPATH=src python scripts/bench.py --store /tmp/repro-store

``--pytest`` additionally runs the pytest benchmark suite itself (slower;
wall time is recorded in the snapshot under ``pytest_suite``).  ``--store``
runs the batch twice against a persistent :class:`repro.api.ArtifactStore`
directory and records the cold-vs-warm comparison under ``store_demo`` (the
warm pass must perform zero synthesis runs).

The snapshot also records a ``columnar_vs_scalar`` section (skip with
``--skip-columnar``): the paper-scale IGF exploration timed through the
columnar engine (:mod:`repro.dse.engine`) and through the legacy scalar
explorer loop, with the speedup and a digest check proving the two produce
byte-identical serialized results.

And an ``executor_scaling`` section (skip with ``--skip-scaling``): the cold 4-kernel scaling batch run through every
built-in ``Session.run_many`` strategy — ``serial``, ``threads``, and
``processes`` — with per-strategy wall times, speedups over serial, and a
digest check proving the three produce byte-identical results.  On a
multi-core runner the ``processes`` strategy is the headline number
(CPU-bound characterization work sidesteps the GIL); on a single core it
only measures the forking overhead.

And a ``service_throughput`` section (skip with ``--skip-service``): a
16-job burst (4 unique device/format scenarios, 4 concurrent submitters
each) through the in-process exploration service
(:mod:`repro.service`), recording jobs/s, the coalesce hit-rate, and the
``run_many`` batch sizes the scheduler dispatched.

And a ``fleet_throughput`` section (skip with ``--skip-fleet``): the same
burst through a 3-worker consistent-hash fleet (:mod:`repro.fleet`) with
deliberately tight per-worker queues, recording jobs/s, the shed count,
and the placement distribution the hash ring produced.

And a ``parallel_stream`` section (skip with ``--skip-parallel-stream``):
the million-candidate blur space streamed once serially and once with two
chunk-shard workers under an fps floor, recording both walls, the speedup
(honest numbers — on a 1-core container the fan-out can't beat the serial
fold by much, like ``executor_scaling``), the pruned fraction including
the throughput-side suffix pushdown, and the digest-identity verdict.

And an ``obs_overhead`` section (skip with ``--skip-obs``): the 4 unique
service-burst scenarios run through a threaded ``run_many`` batch with
tracing off and again with tracing on (full span recording into a
:class:`repro.obs.trace.TraceStore` under a root span), recording both
walls and the relative overhead.  The section *asserts* the subsystem's
two headline guarantees — the traced and untraced result digests are
byte-identical, and the overhead stays under 5% — and raises if either
fails, so a recorded section is the proof.

And a ``simulation_throughput`` section (skip with ``--skip-sim``): a
640x480 blur frame pushed through the vectorized
:class:`repro.simulation.FunctionalConeSimulator` and through the
preserved scalar tile loop, with pixels/s for both paths, the speedup,
and a digest check proving the two produce bit-identical output frames.

Each module entry aggregates the wall time and synthesis-run count of the
workload(s) it draws on; workload wall times are per-workload session
latencies, so under a threaded batch their sum can exceed the batch wall
time.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import glob
import json
import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.api import Session, Workload  # noqa: E402
from repro.ir.operators import DataFormat  # noqa: E402

#: Frame size used throughout Section 4 of the paper.
FRAME = (1024, 768)

#: The explorations the figure/section benches are built on, exercised
#: through the batch API exactly as ``benchmarks/_support.make_explorer``
#: configures them.
WORKLOADS = {
    "igf": Workload.from_algorithm(
        "blur", data_format=DataFormat.FIXED16, iterations=10,
        frame_width=FRAME[0], frame_height=FRAME[1],
        window_sides=(1, 2, 3, 4, 5, 6, 7, 8, 9), max_depth=5,
        max_cones_per_depth=16, synthesize_all=True),
    "chambolle": Workload.from_algorithm(
        "chamb", data_format=DataFormat.FIXED16, iterations=11,
        frame_width=FRAME[0], frame_height=FRAME[1],
        window_sides=(1, 2, 3, 4, 5, 6, 7, 8, 9), max_depth=5,
        max_cones_per_depth=16, synthesize_all=True),
}

#: The cold 4-kernel batch of the executor-scaling section: four distinct
#: characterization keys (so the ``processes`` strategy has four shards to
#: distribute), moderate knobs (cold wall time a few seconds per kernel).
SCALING_WORKLOADS = [
    Workload.from_algorithm(
        name, data_format=DataFormat.FIXED16, iterations=8,
        frame_width=FRAME[0], frame_height=FRAME[1],
        window_sides=(1, 2, 3, 4, 5, 6), max_depth=4,
        max_cones_per_depth=8, synthesize_all=True)
    for name in ("blur", "chamb", "jacobi", "heat")
]

#: Which exploration(s) each bench module draws on.
MODULE_WORKLOADS = {
    "bench_fig05_igf_area_estimation": ["igf"],
    "bench_fig06_igf_pareto": ["igf"],
    "bench_fig07_igf_throughput": ["igf"],
    "bench_fig08_chambolle_area_estimation": ["chambolle"],
    "bench_fig09_chambolle_pareto": ["chambolle"],
    "bench_fig10_chambolle_throughput": ["chambolle"],
    "bench_sec41_igf_vs_literature": ["igf"],
    "bench_sec42_chambolle_vs_literature": ["chambolle"],
    "bench_sec43_commercial_hls": ["igf", "chambolle"],
}


def discover_bench_modules() -> list:
    pattern = os.path.join(REPO_ROOT, "benchmarks", "bench_*.py")
    return sorted(os.path.splitext(os.path.basename(path))[0]
                  for path in glob.glob(pattern))


def run_batch(jobs, store=None) -> dict:
    """Run every bench workload through one session; return the snapshot body."""
    names = list(WORKLOADS)
    workloads = [WORKLOADS[name] for name in names]
    wall_by_workload = {}

    def observe(event):
        if event.kind == "workload-finished":
            wall_by_workload[event.workload] = event.elapsed_s

    session = Session(on_event=observe, store=store)

    per_workload = {}
    started = time.perf_counter()
    results = session.run_many(workloads, max_workers=jobs)
    batch_wall_s = time.perf_counter() - started

    for name, workload, result in zip(names, workloads, results):
        exploration = result.exploration
        per_workload[name] = {
            "kernel": workload.name,
            "device": workload.device.name,
            "frame": [workload.frame_width, workload.frame_height],
            "iterations": workload.iterations,
            "wall_time_s": wall_by_workload.get(workload, 0.0),
            "design_points": len(exploration.design_points),
            "pareto_points": len(exploration.pareto),
            "synthesis_runs": exploration.synthesis_runs,
            "synthesis_runs_avoided": exploration.synthesis_runs_avoided,
            "tool_runtime_spent_s": exploration.tool_runtime_spent_s,
            "tool_runtime_avoided_s": exploration.tool_runtime_avoided_s,
        }

    stats = session.stats
    return {
        "wall_time_s": batch_wall_s,
        "session": stats.to_dict(),
        "workloads": per_workload,
    }


def run_executor_scaling(jobs=None) -> dict:
    """Time the cold scaling batch under every built-in executor strategy.

    Each strategy gets a fresh, storeless session, so every pass pays the
    full characterization cost — exactly the cold CPU-bound sweep the
    ``processes`` strategy targets.  Byte-identical results across the
    strategies are asserted (and recorded) via a digest over the serialized
    result list.
    """
    import hashlib

    jobs = jobs or min(4, len(SCALING_WORKLOADS))
    strategies = {}
    digests = {}
    for strategy in ("serial", "threads", "processes"):
        session = Session()
        started = time.perf_counter()
        results = session.run_many(SCALING_WORKLOADS, max_workers=jobs,
                                   executor=strategy)
        wall_s = time.perf_counter() - started
        stats = session.stats
        digest = hashlib.sha256(json.dumps(
            [result.to_dict() for result in results],
            sort_keys=True).encode("utf-8")).hexdigest()
        digests[strategy] = digest
        strategies[strategy] = {
            "wall_s": wall_s,
            "synthesis_runs": stats.synthesis_runs,
            "result_digest": digest,
        }
        print(f"    {strategy:<10} {wall_s:7.2f}s "
              f"({stats.synthesis_runs} synthesis runs)")
    serial_wall = strategies["serial"]["wall_s"]
    for strategy, entry in strategies.items():
        entry["speedup_vs_serial"] = (serial_wall / entry["wall_s"]
                                      if entry["wall_s"] > 0 else None)
    identical = len(set(digests.values())) == 1
    if not identical:
        print("  WARNING: executor strategies disagreed on results!",
              file=sys.stderr)
    return {
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "workloads": [workload.name for workload in SCALING_WORKLOADS],
        "strategies": strategies,
        "results_identical": identical,
    }


def run_columnar_vs_scalar(repeats=5) -> dict:
    """Time the columnar engine against the legacy scalar explorer loop.

    Uses the paper-scale IGF space (windows 1..9, depths 1..5, up to 16
    primary-cone instances — the Section-4 configuration).  Cone
    characterization is paid once up front and shared by both paths, so the
    timings isolate the exploration phase the engine vectorizes; each path
    is timed ``repeats`` times and the best wall is recorded (the digest
    check covers every run).  ``results_identical`` asserts the engine's
    headline guarantee: byte-identical serialized results.
    """
    import hashlib

    from repro.api.pipeline import build_explorer

    workload = WORKLOADS["igf"]
    explorer = build_explorer(workload)
    explorer.characterize_cones(workload.iterations)  # shared, not timed

    def digest(result):
        return hashlib.sha256(json.dumps(
            result.to_dict(), sort_keys=True).encode("utf-8")).hexdigest()

    def best_wall(explore):
        wall, digests = float("inf"), set()
        for _ in range(repeats):
            started = time.perf_counter()
            result = explore()
            wall = min(wall, time.perf_counter() - started)
            digests.add(digest(result))
        return wall, digests, result

    frame = (workload.frame_width, workload.frame_height)
    scalar_wall, scalar_digests, scalar_result = best_wall(
        lambda: explorer.explore_scalar(workload.iterations, *frame))
    columnar_wall, columnar_digests, _ = best_wall(
        lambda: explorer.explore(workload.iterations, *frame))

    identical = scalar_digests == columnar_digests and len(
        scalar_digests) == 1
    speedup = scalar_wall / columnar_wall if columnar_wall > 0 else None
    if not identical:
        print("  WARNING: columnar and scalar explorations disagreed!",
              file=sys.stderr)
    print(f"    scalar    {scalar_wall * 1e3:8.2f} ms")
    print(f"    columnar  {columnar_wall * 1e3:8.2f} ms  "
          f"({speedup:.2f}x, identical results: {identical})")
    return {
        "workload": workload.name,
        "design_points": len(scalar_result.design_points),
        "repeats": repeats,
        "scalar_wall_s": scalar_wall,
        "columnar_wall_s": columnar_wall,
        "speedup": speedup,
        "result_digest": sorted(scalar_digests)[0],
        "results_identical": identical,
    }


#: The service-throughput burst: 4 distinct scenario workloads (devices x
#: formats over one kernel family) each submitted 4 times by concurrent
#: clients — 16 jobs, 12 of which should coalesce or batch away.
def _service_burst():
    from repro.ir.operators import DataFormat

    scenarios = [
        Workload.from_algorithm(
            "blur", device=device, data_format=data_format, iterations=6,
            frame_width=640, frame_height=480, window_sides=(1, 2, 3, 4),
            max_depth=3, max_cones_per_depth=6)
        for device in ("xc6vlx760", "xc2vp30")
        for data_format in (DataFormat.FIXED16, DataFormat.FIXED32)
    ]
    return [scenario for scenario in scenarios for _ in range(4)]


def run_service_throughput() -> dict:
    """Drive a concurrent burst through the exploration service.

    16 jobs (4 unique device/format scenarios x 4 duplicate submitters)
    land on a paused in-process :class:`repro.service.ReproServer` from 16
    threads, then the scheduler is released: duplicates coalesce onto one
    job each and the 4 unique scenarios ride batched ``run_many``
    dispatches over the shared columnar table.  Records jobs/s, the
    coalesce hit-rate, and the dispatched batch sizes.
    """
    import threading

    from repro.service import ReproClient, ReproServer

    burst = _service_burst()
    server = ReproServer(start=False)
    client = ReproClient(server)
    handles = []
    lock = threading.Lock()
    barrier = threading.Barrier(len(burst))

    def submit(workload):
        barrier.wait()
        handle = client.submit(workload, priority="batch")
        with lock:
            handles.append(handle)

    threads = [threading.Thread(target=submit, args=(workload,))
               for workload in burst]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    server.start()
    for handle in handles:
        handle.result(timeout=600)
    wall_s = time.perf_counter() - started
    stats = server.stats()
    server.close()
    jobs_per_s = len(burst) / wall_s if wall_s > 0 else None
    print(f"    {len(burst)} jobs in {wall_s:.2f}s "
          f"({jobs_per_s:.1f} jobs/s), coalesce hit-rate "
          f"{stats['queue']['coalesce_hit_rate']:.2f}, batch sizes "
          f"{stats['scheduler']['recent_batch_sizes']}")
    return {
        "transport": "in-process",
        "jobs": len(burst),
        "unique_workloads": len(set(burst)),
        "wall_s": wall_s,
        "jobs_per_s": jobs_per_s,
        "coalesce_hits": stats["queue"]["coalesced"],
        "coalesce_hit_rate": stats["queue"]["coalesce_hit_rate"],
        "batch_sizes": stats["scheduler"]["recent_batch_sizes"],
        "batched_dispatches": stats["scheduler"]["batched_dispatches"],
        "session_synthesis_runs": stats["session"]["synthesis_runs"],
        "shared_table": stats["shared_table"],
    }


def run_fleet_throughput() -> dict:
    """Drive the service burst through a consistent-hash routed fleet.

    The same 16-job burst as ``service_throughput`` lands on a 3-worker
    :class:`repro.fleet.FleetRouter` with deliberately tight per-worker
    queues (``max_pending=2``) from 16 concurrent submitters using the
    retrying client, so any shed 503 is absorbed by backoff and every
    job still completes.  Records jobs/s, the shed count, and the
    placement distribution the hash ring produced across the workers.
    """
    import threading

    from repro.fleet import FleetRouter
    from repro.service import ReproClient

    burst = _service_burst()
    router = FleetRouter.local(3, max_pending=2)
    client = ReproClient(router, retries=8, backoff_base_s=0.05,
                         backoff_cap_s=0.5, retry_jitter_seed=13)
    handles = []
    lock = threading.Lock()
    barrier = threading.Barrier(len(burst))

    def submit(workload):
        barrier.wait()
        handle = client.submit(workload, priority="batch")
        with lock:
            handles.append(handle)

    threads = [threading.Thread(target=submit, args=(workload,))
               for workload in burst]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for handle in handles:
        handle.result(timeout=600)
    wall_s = time.perf_counter() - started
    stats = router.stats()
    router.close()

    placement = {name: entry["jobs_routed"]
                 for name, entry in stats["workers"].items()}
    jobs_per_s = len(burst) / wall_s if wall_s > 0 else None
    print(f"    {len(burst)} jobs in {wall_s:.2f}s "
          f"({jobs_per_s:.1f} jobs/s), shed "
          f"{stats['router']['shed']}, placement {placement}")
    return {
        "workers": len(placement),
        "jobs": len(burst),
        "unique_workloads": len(set(burst)),
        "wall_s": wall_s,
        "jobs_per_s": jobs_per_s,
        "routed": stats["router"]["routed"],
        "shed": stats["router"]["shed"],
        "failovers": stats["router"]["failovers"],
        "replays": stats["router"]["replays"],
        "placement": placement,
        "coalesce_hits": stats["aggregate"]["coalesced"],
        "session_synthesis_runs": stats["aggregate"]["synthesis_runs"],
    }


def run_obs_overhead(repeats=3, max_overhead=0.05) -> dict:
    """Measure the cost of full tracing on a threaded exploration batch.

    The 4 unique service-burst scenarios run through ``run_many`` with
    the recorder off and again with every span recorded into a dedicated
    :class:`~repro.obs.trace.TraceStore` under a root span — the
    heaviest-instrumented path (session + stage + executor spans per
    workload).  One untimed warmup pass warms the process-global shared
    tables so both timed passes pay only exploration; each pass is timed
    ``repeats`` times and the best wall recorded.  Raises if the traced
    and untraced result digests diverge or the overhead reaches
    ``max_overhead`` — the subsystem's ~zero-cost-disabled and
    bit-neutrality guarantees are asserted, not just reported.
    """
    import hashlib

    from repro.obs import trace as obs_trace

    workloads = list(dict.fromkeys(_service_burst()))

    def digest(results):
        return hashlib.sha256(json.dumps(
            [result.to_dict() for result in results],
            sort_keys=True).encode("utf-8")).hexdigest()

    def run_once():
        return Session().run_many(workloads, max_workers=2,
                                  executor="threads")

    run_once()  # warmup: shared characterization tables, not timed

    def best_wall(run):
        wall, digests = float("inf"), set()
        for _ in range(repeats):
            started = time.perf_counter()
            results = run()
            wall = min(wall, time.perf_counter() - started)
            digests.add(digest(results))
        return wall, digests

    untraced_wall, untraced_digests = best_wall(run_once)

    store = obs_trace.TraceStore(max_traces=4096)
    spans_recorded = 0

    def run_traced():
        nonlocal spans_recorded
        obs_trace.enable(store)
        try:
            with obs_trace.span("bench.batch"):
                return run_once()
        finally:
            obs_trace.disable()
            spans_recorded = store.stats_snapshot()["spans_added"]

    traced_wall, traced_digests = best_wall(run_traced)

    if traced_digests != untraced_digests or len(untraced_digests) != 1:
        raise RuntimeError(
            f"tracing changed the results: untraced {untraced_digests} "
            f"vs traced {traced_digests}")
    overhead = ((traced_wall - untraced_wall) / untraced_wall
                if untraced_wall > 0 else 0.0)
    print(f"    untraced {untraced_wall * 1e3:8.2f} ms")
    print(f"    traced   {traced_wall * 1e3:8.2f} ms  "
          f"({overhead:+.2%} overhead, {spans_recorded} spans, "
          f"identical results: True)")
    if overhead >= max_overhead:
        raise RuntimeError(
            f"tracing overhead {overhead:.2%} breaches the "
            f"{max_overhead:.0%} budget")
    return {
        "workloads": len(workloads),
        "repeats": repeats,
        "untraced_wall_s": untraced_wall,
        "traced_wall_s": traced_wall,
        "overhead": overhead,
        "max_overhead": max_overhead,
        "spans_recorded": spans_recorded,
        "result_digest": sorted(untraced_digests)[0],
        "results_identical": True,
    }


def run_simulation_throughput(height=480, width=640, iterations=6,
                              window_side=6, repeats=3) -> dict:
    """Time the vectorized simulator against the preserved scalar tile loop.

    One VGA blur frame (the paper's IGF kernel) runs through
    ``FunctionalConeSimulator.run`` and through ``run_scalar`` in region
    mode.  Cone expressions are built once up
    front and shared, so the timings isolate tile evaluation — the phase
    the vectorized path turns into whole-array NumPy ops.  Each path is
    timed ``repeats`` times and the best wall is recorded; the digest
    check asserts the headline guarantee that both paths produce
    bit-identical frames.
    """
    import hashlib

    from repro.algorithms.registry import get_algorithm
    from repro.simulation import FrameSet, FunctionalConeSimulator

    kernel = get_algorithm("blur").kernel()
    simulator = FunctionalConeSimulator(kernel)
    frames = FrameSet.for_kernel(kernel, height, width, seed=0)
    simulator._cone(window_side, iterations)  # shared, not timed

    def digest(result):
        payload = hashlib.sha256()
        for name in sorted(result.names()):
            payload.update(result[name].data.tobytes())
        return payload.hexdigest()

    def best_wall(simulate):
        wall, digests = float("inf"), set()
        for _ in range(repeats):
            started = time.perf_counter()
            result = simulate()
            wall = min(wall, time.perf_counter() - started)
            digests.add(digest(result))
        return wall, digests

    vector_wall, vector_digests = best_wall(
        lambda: simulator.run(frames, iterations, window_side, mode="region"))
    scalar_wall, scalar_digests = best_wall(
        lambda: simulator.run_scalar(frames, iterations, window_side,
                                     mode="region"))

    identical = vector_digests == scalar_digests and len(vector_digests) == 1
    speedup = scalar_wall / vector_wall if vector_wall > 0 else None
    pixels = height * width
    if not identical:
        print("  WARNING: vectorized and scalar simulations disagreed!",
              file=sys.stderr)
    print(f"    scalar      {scalar_wall * 1e3:8.2f} ms "
          f"({pixels / scalar_wall:,.0f} px/s)")
    print(f"    vectorized  {vector_wall * 1e3:8.2f} ms "
          f"({pixels / vector_wall:,.0f} px/s, {speedup:.2f}x, "
          f"identical results: {identical})")
    return {
        "kernel": kernel.name,
        "frame": [width, height],
        "iterations": iterations,
        "window_side": window_side,
        "mode": "region",
        "repeats": repeats,
        "scalar_wall_s": scalar_wall,
        "vectorized_wall_s": vector_wall,
        "scalar_pixels_per_s": pixels / scalar_wall,
        "vectorized_pixels_per_s": pixels / vector_wall,
        "speedup": speedup,
        "result_digest": sorted(vector_digests)[0],
        "results_identical": identical,
    }


def run_large_space(max_cones=23_000, rss_ceiling_mb=512.0) -> dict:
    """Stream a million-candidate space out of core and record the cost.

    Runs ``scripts/large_smoke.py`` in a fresh subprocess so
    ``ru_maxrss`` measures the streaming exploration alone — the bench
    process itself has already materialized paper-scale tables.  The
    default ``max_cones`` widens the blur space's instance-count axis to
    9 windows x 5 splits x 23,000 counts = 1,035,000 candidates; the
    subprocess fails (and so does this section) if the peak RSS exceeds
    the ceiling.  Records candidates/s, the pruned-before-costing
    fraction, and the bounded frontier/chunk peaks.
    """
    completed = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "scripts",
                                      "large_smoke.py"),
         "--skip-digest", "--json", "--max-cones", str(max_cones),
         "--min-rows", "1000000", "--rss-ceiling-mb", str(rss_ceiling_mb)],
        capture_output=True, text=True)
    if completed.returncode != 0:
        raise RuntimeError(f"large-space smoke failed:\n{completed.stdout}"
                           f"\n{completed.stderr}")
    metrics = json.loads(completed.stdout)
    print(f"    {metrics['space_rows']:,} candidates at "
          f"{metrics['candidates_per_s']:,.0f}/s, "
          f"{metrics['pruned_fraction']:.1%} pruned before costing, "
          f"peak RSS {metrics['peak_rss_mb']} MB "
          f"(ceiling {rss_ceiling_mb} MB)")
    return metrics


def run_parallel_stream(max_cones=23_000, rss_ceiling_mb=512.0, jobs=2,
                        min_fps=30.0) -> dict:
    """Parallel streamed exploration vs the serial fold, with an fps floor.

    One ``scripts/large_smoke.py --jobs`` subprocess streams the
    million-candidate blur space twice — serial fold, then ``jobs``
    chunk-shard workers — under a frames-per-second floor so the
    throughput-side suffix pushdown engages on top of the area-side
    pruning.  The subprocess fails on any digest divergence between the
    two runs (and on an RSS-ceiling breach), so a recorded section *is*
    the bit-identity proof.  The speedup is honest: on a 1-core container
    the thread fan-out mostly measures dispatch overhead.
    """
    completed = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "scripts",
                                      "large_smoke.py"),
         "--skip-digest", "--json", "--max-cones", str(max_cones),
         "--min-rows", "1000000", "--rss-ceiling-mb", str(rss_ceiling_mb),
         "--jobs", str(jobs), "--min-fps", str(min_fps)],
        capture_output=True, text=True)
    if completed.returncode != 0:
        raise RuntimeError(f"parallel-stream smoke failed:\n"
                           f"{completed.stdout}\n{completed.stderr}")
    metrics = json.loads(completed.stdout)
    parallel = metrics["parallel"]
    print(f"    serial {metrics['elapsed_s']}s -> --jobs "
          f"{parallel['jobs']} {parallel['elapsed_s']}s "
          f"({parallel['speedup_vs_serial']}x, digest identical: "
          f"{parallel['digest_identical']}); fps floor {min_fps} pruned "
          f"{metrics['throughput_pruned_rows']:,} rows throughput-side "
          f"({metrics['pruned_fraction']:.2%} pruned in total)")
    return {
        "space_rows": metrics["space_rows"],
        "min_fps": min_fps,
        "serial_wall_s": metrics["elapsed_s"],
        "parallel_wall_s": parallel["elapsed_s"],
        "jobs": parallel["jobs"],
        "executor": parallel["executor"],
        "speedup_vs_serial": parallel["speedup_vs_serial"],
        "digest_identical": parallel["digest_identical"],
        "admitted_rows": metrics["admitted_rows"],
        "pruned_rows": metrics["pruned_rows"],
        "throughput_pruned_rows": metrics["throughput_pruned_rows"],
        "pruned_fraction": metrics["pruned_fraction"],
        "peak_rss_mb": metrics["peak_rss_mb"],
    }


def module_summary(modules, per_workload) -> dict:
    """Map each bench module to its workloads plus their aggregate cost."""
    summary = {}
    for module in modules:
        names = MODULE_WORKLOADS.get(module, [])
        entries = [per_workload[name] for name in names
                   if name in per_workload]
        summary[module] = {
            "workloads": names,
            "wall_time_s": sum(entry["wall_time_s"] for entry in entries),
            "synthesis_runs": sum(entry["synthesis_runs"]
                                  for entry in entries),
        }
    return summary


def run_pytest_suite() -> dict:
    """Optionally run the pytest benchmark suite and time it."""
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.join(REPO_ROOT, "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    # bench_*.py does not match pytest's default file pattern, so pass the
    # module files explicitly.
    modules = sorted(glob.glob(os.path.join(REPO_ROOT, "benchmarks",
                                            "bench_*.py")))
    started = time.perf_counter()
    completed = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", *modules],
        env=env, cwd=os.path.join(REPO_ROOT, "benchmarks"),
        capture_output=True, text=True)
    return {
        "wall_time_s": time.perf_counter() - started,
        "returncode": completed.returncode,
        "tail": completed.stdout.strip().splitlines()[-3:],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default=None,
                        help="snapshot path (default: BENCH_<date>.json in "
                             "the repo root)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker threads for the batch (default: auto)")
    parser.add_argument("--pytest", action="store_true",
                        help="also run the pytest benchmark suite")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="run the batch twice against a persistent "
                             "artifact store under DIR and record the "
                             "cold-vs-warm comparison (DIR is CLEARED "
                             "first so the cold numbers are honest)")
    parser.add_argument("--skip-scaling", action="store_true",
                        help="skip the serial-vs-threads-vs-processes "
                             "executor scaling section")
    parser.add_argument("--skip-columnar", action="store_true",
                        help="skip the columnar-engine-vs-scalar-explorer "
                             "exploration benchmark")
    parser.add_argument("--skip-service", action="store_true",
                        help="skip the exploration-service throughput "
                             "burst (jobs/s, coalesce hit-rate, batch "
                             "sizes)")
    parser.add_argument("--skip-fleet", action="store_true",
                        help="skip the fleet throughput burst (jobs/s, "
                             "shed count, placement distribution)")
    parser.add_argument("--skip-obs", action="store_true",
                        help="skip the tracing-overhead benchmark "
                             "(untraced vs traced walls, digest "
                             "identity, <5%% budget)")
    parser.add_argument("--skip-sim", action="store_true",
                        help="skip the vectorized-vs-scalar simulation "
                             "throughput benchmark (pixels/s, speedup, "
                             "digest identity)")
    parser.add_argument("--skip-large-space", action="store_true",
                        help="skip the million-candidate out-of-core "
                             "streaming benchmark (candidates/s, peak "
                             "RSS, pruned fraction)")
    parser.add_argument("--skip-parallel-stream", action="store_true",
                        help="skip the parallel streamed exploration "
                             "benchmark (serial vs --jobs 2 walls, "
                             "throughput-side pruning, digest identity)")
    args = parser.parse_args(argv)

    modules = discover_bench_modules()
    unmapped = [m for m in modules if m not in MODULE_WORKLOADS]
    if unmapped:
        print(f"warning: bench modules without a workload mapping: "
              f"{', '.join(unmapped)}", file=sys.stderr)

    if args.store:
        # the snapshot's primary numbers double as the cold pass, so a
        # pre-populated store would silently record warm timings as cold
        from repro.api import ArtifactStore
        stale = ArtifactStore(args.store).clear()
        if stale:
            print(f"cleared {stale} stale artifact(s) from {args.store} "
                  f"so the cold pass is cold")

    print(f"running {len(WORKLOADS)} bench workloads through the batch API...")
    batch = run_batch(args.jobs, store=args.store)
    print(f"  batch wall time : {batch['wall_time_s']:.2f}s")
    print(f"  synthesis runs  : {batch['session']['synthesis_runs']}")
    print(f"  tool time saved : "
          f"~{batch['session']['tool_runtime_avoided_s']:.0f}s")

    snapshot = {
        "date": _dt.date.today().isoformat(),
        "python": sys.version.split()[0],
        **batch,
        "modules": module_summary(modules, batch["workloads"]),
    }

    if args.store:
        print("rerunning the batch against the warm store...")
        warm = run_batch(args.jobs, store=args.store)
        snapshot["store_demo"] = {
            "dir": os.path.abspath(args.store),
            "cold_wall_s": batch["wall_time_s"],
            "warm_wall_s": warm["wall_time_s"],
            "speedup": (batch["wall_time_s"] / warm["wall_time_s"]
                        if warm["wall_time_s"] > 0 else None),
            "warm_synthesis_runs": warm["session"]["synthesis_runs"],
            "warm_disk_hits": warm["session"]["store_disk_hits"],
        }
        print(f"  cold {batch['wall_time_s']:.2f}s -> warm "
              f"{warm['wall_time_s']:.2f}s "
              f"({warm['session']['store_disk_hits']} disk hits, "
              f"{warm['session']['synthesis_runs']} synthesis runs)")

    if not args.skip_columnar:
        print("running the columnar-vs-scalar exploration benchmark "
              "(paper-scale IGF space)...")
        snapshot["columnar_vs_scalar"] = run_columnar_vs_scalar()

    if not args.skip_scaling:
        print(f"running the executor scaling batch "
              f"({len(SCALING_WORKLOADS)} kernels x serial/threads/"
              f"processes, {os.cpu_count()} core(s))...")
        snapshot["executor_scaling"] = run_executor_scaling(args.jobs)
        scaling = snapshot["executor_scaling"]["strategies"]
        print(f"  processes vs serial: "
              f"{scaling['processes']['speedup_vs_serial']:.2f}x "
              f"(identical results: "
              f"{snapshot['executor_scaling']['results_identical']})")

    if not args.skip_service:
        print("running the service throughput burst "
              "(16 jobs, 4 unique scenarios, concurrent submitters)...")
        snapshot["service_throughput"] = run_service_throughput()

    if not args.skip_fleet:
        print("running the fleet throughput burst "
              "(16 jobs through a 3-worker consistent-hash fleet)...")
        snapshot["fleet_throughput"] = run_fleet_throughput()

    if not args.skip_obs:
        print("running the tracing-overhead benchmark "
              "(4 scenarios, untraced vs fully traced)...")
        snapshot["obs_overhead"] = run_obs_overhead()

    if not args.skip_large_space:
        print("running the large-space streaming benchmark "
              "(1,035,000-candidate blur space, fresh subprocess)...")
        snapshot["large_space"] = run_large_space()

    if not args.skip_parallel_stream:
        print("running the parallel streamed exploration benchmark "
              "(serial fold vs --jobs 2, fps floor, fresh subprocess)...")
        snapshot["parallel_stream"] = run_parallel_stream()

    # Runs after the large-space section on purpose: the subprocess behind
    # that section inherits this process's resident set at fork time, so
    # the big frame arrays this benchmark touches would otherwise taint its
    # peak-RSS measurement.
    if not args.skip_sim:
        print("running the simulation throughput benchmark "
              "(640x480 blur, vectorized vs scalar tile loop)...")
        snapshot["simulation_throughput"] = run_simulation_throughput()

    if args.pytest:
        print("running the pytest benchmark suite...")
        snapshot["pytest_suite"] = run_pytest_suite()
        print(f"  suite wall time : "
              f"{snapshot['pytest_suite']['wall_time_s']:.2f}s "
              f"(exit {snapshot['pytest_suite']['returncode']})")

    output = args.output or os.path.join(
        REPO_ROOT, f"BENCH_{snapshot['date']}.json")
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
