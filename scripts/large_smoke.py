"""Large-space streaming smoke test (`scripts/check.sh --large`).

Two checks in one fresh process:

1. **Digest identity** — on the paper-scale subspace (the 720-candidate
   blur space of Section 4.1) ``explore_stream`` must reproduce
   ``explore_columnar`` exactly: same Pareto rows, byte-identical
   serialized design points, same pruned-row count — across chunk sizes
   {1 row, one (window, split) group, the whole space} and a shuffled
   chunk order.

2. **Bounded memory at scale** — a >=10^5-candidate space (the same shape
   knobs with the instance-count axis widened) must stream to completion
   under a hard peak-RSS ceiling, measured with
   ``resource.getrusage(RUSAGE_SELF).ru_maxrss`` over the whole process.
   The columnar oracle is deliberately *not* run on the large space in
   this process, so the ceiling bounds the streaming path alone.

``--jobs N`` additionally streams the large space through N chunk-shard
workers (``--executor``, default threads) and requires digest identity
against the serial fold — under the same RSS ceiling.  ``--min-fps``
engages the throughput-side suffix pushdown on the large run.  ``--json``
emits the collected metrics (candidates/s, peak RSS, pruned fraction,
parallel speedup, ...) on stdout for reuse by ``scripts/bench.py``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import random
import resource
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algorithms import get_algorithm                   # noqa: E402
from repro.dse.constraints import DseConstraints             # noqa: E402
from repro.dse.engine import explore_columnar                # noqa: E402
from repro.dse.explorer import DesignSpaceExplorer           # noqa: E402
from repro.dse.stream import explore_stream, plan_chunks     # noqa: E402

ITERATIONS = 10  # the paper's blur case study (Section 4.1)


def peak_rss_mb() -> float:
    """Peak resident set of this process in MB (ru_maxrss is KB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def serialized(points) -> str:
    return json.dumps([point.to_dict() for point in points], sort_keys=True)


def check_digest_identity(explorer, space, characterizations, usable):
    """Streamed == columnar on the paper-scale subspace, chunking-invariant."""
    paper_space = dataclasses.replace(space, max_cones_per_depth=16)
    group_rows = paper_space.max_cones_per_depth
    scenarios = [
        (None, "unconstrained"),
        (DseConstraints(device_only=True), "device-only"),
    ]
    checked = 0
    for constraints, label in scenarios:
        oracle = explore_columnar(paper_space, characterizations,
                                  explorer.throughput_model, 1024, 768,
                                  constraints, usable,
                                  materialize="frontier")
        digest = serialized(oracle.pareto)
        for chunk_rows in (1, group_rows, paper_space.size()):
            n_chunks = len(plan_chunks(paper_space, chunk_rows))
            orders = [None, random.Random(2013).sample(range(n_chunks),
                                                       n_chunks)]
            for order in orders:
                streamed = explore_stream(
                    paper_space, characterizations,
                    explorer.throughput_model, 1024, 768, constraints,
                    usable, chunk_rows=chunk_rows, chunk_order=order,
                    use_mask_cache=False)
                if serialized(streamed.pareto) != digest:
                    raise SystemExit(
                        f"digest mismatch ({label}, chunk_rows="
                        f"{chunk_rows}, shuffled={order is not None})")
                if streamed.pruned_rows != oracle.pruned_rows:
                    raise SystemExit(
                        f"pruned-row mismatch ({label}): streamed "
                        f"{streamed.pruned_rows} != oracle "
                        f"{oracle.pruned_rows}")
                checked += 1
    print(f"digest identity ok: {checked} streamed runs == columnar oracle "
          f"on the {paper_space.size()}-candidate paper space")


def run_large(explorer, space, characterizations, usable, chunk_rows,
              constraints, jobs=None, executor=None):
    started = time.perf_counter()
    streamed = explore_stream(space, characterizations,
                              explorer.throughput_model, 1024, 768,
                              constraints, usable, chunk_rows=chunk_rows,
                              jobs=jobs, executor=executor)
    elapsed = time.perf_counter() - started
    return streamed, elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-cones", type=int, default=2300,
                        help="instance-count axis of the large space "
                             "(default 2300 -> 103,500 candidates)")
    parser.add_argument("--chunk-rows", type=int, default=4096)
    parser.add_argument("--rss-ceiling-mb", type=float, default=512.0,
                        help="hard peak-RSS ceiling for the whole process")
    parser.add_argument("--min-rows", type=int, default=100_000,
                        help="fail if the large space is smaller than this")
    parser.add_argument("--skip-digest", action="store_true",
                        help="skip the paper-space identity check "
                             "(bench reuse)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="additionally stream the large space with N "
                             "chunk-shard workers and require digest "
                             "identity vs the serial fold (default 1: "
                             "serial only)")
    parser.add_argument("--executor", default="threads",
                        help="executor strategy for --jobs > 1 "
                             "(default: threads)")
    parser.add_argument("--min-fps", type=float, default=None,
                        help="add a frames-per-second floor to the large "
                             "run so the throughput-side suffix pushdown "
                             "engages (reported as "
                             "throughput_pruned_rows)")
    parser.add_argument("--json", action="store_true",
                        help="emit metrics as JSON on stdout")
    args = parser.parse_args(argv)

    explorer = DesignSpaceExplorer(
        get_algorithm("blur").kernel(),
        window_sides=tuple(range(1, 10)), max_depth=5,
        max_cones_per_depth=args.max_cones, synthesize_all=True)
    characterizations, _ = explorer.characterize_cones(ITERATIONS)
    space = explorer._space(ITERATIONS)
    usable = explorer.device.usable_capacity.luts

    rows = space.size()
    if rows < args.min_rows:
        raise SystemExit(f"large space has only {rows} candidates "
                         f"(need >= {args.min_rows})")

    if not args.skip_digest:
        check_digest_identity(explorer, space, characterizations, usable)

    constraints = DseConstraints(device_only=True,
                                 min_frames_per_second=args.min_fps)
    streamed, elapsed = run_large(explorer, space, characterizations,
                                  usable, args.chunk_rows, constraints)
    parallel_metrics = None
    if args.jobs > 1:
        parallel, parallel_s = run_large(
            explorer, space, characterizations, usable, args.chunk_rows,
            constraints, jobs=args.jobs, executor=args.executor)
        if serialized(parallel.pareto) != serialized(streamed.pareto):
            raise SystemExit(
                f"parallel digest mismatch: --jobs {args.jobs} "
                f"({args.executor}) != serial fold")
        if parallel.peak_chunk_rows > args.chunk_rows:
            raise SystemExit("parallel peak chunk exceeded --chunk-rows")
        parallel_metrics = {
            "jobs": parallel.jobs,
            "executor": args.executor,
            "elapsed_s": round(parallel_s, 3),
            "speedup_vs_serial": round(elapsed / parallel_s, 2),
            "digest_identical": True,
        }
    rss = peak_rss_mb()
    metrics = {
        "space_rows": streamed.space_rows,
        "admitted_rows": streamed.admitted_rows,
        "pruned_rows": streamed.pruned_rows,
        "throughput_pruned_rows": streamed.throughput_pruned_rows,
        "min_fps": args.min_fps,
        "pruned_fraction": round(streamed.pruned_fraction, 4),
        "chunk_rows": args.chunk_rows,
        "chunks_total": streamed.chunks_total,
        "chunks_skipped": streamed.chunks_skipped,
        "peak_chunk_rows": streamed.peak_chunk_rows,
        "frontier_peak": streamed.frontier_peak,
        "pareto_points": len(streamed.pareto),
        "elapsed_s": round(elapsed, 3),
        "candidates_per_s": round(streamed.space_rows / elapsed, 1),
        "peak_rss_mb": round(rss, 1),
        "rss_ceiling_mb": args.rss_ceiling_mb,
    }
    if parallel_metrics is not None:
        metrics["parallel"] = parallel_metrics
    if args.json:
        print(json.dumps(metrics, indent=2, sort_keys=True))
    else:
        print(f"large space: {metrics['space_rows']:,} candidates streamed "
              f"in {metrics['elapsed_s']}s "
              f"({metrics['candidates_per_s']:,.0f}/s), "
              f"{metrics['pruned_fraction']:.1%} pruned before costing, "
              f"{metrics['pareto_points']} Pareto points, "
              f"peak RSS {metrics['peak_rss_mb']} MB "
              f"(ceiling {args.rss_ceiling_mb} MB)")
        if parallel_metrics is not None:
            print(f"parallel ok: --jobs {parallel_metrics['jobs']} "
                  f"({parallel_metrics['executor']}) digest-identical, "
                  f"{parallel_metrics['elapsed_s']}s "
                  f"({parallel_metrics['speedup_vs_serial']}x vs serial)")
    if rss > args.rss_ceiling_mb:
        raise SystemExit(f"peak RSS {rss:.1f} MB exceeded the "
                         f"{args.rss_ceiling_mb} MB ceiling")
    if streamed.peak_chunk_rows > args.chunk_rows:
        raise SystemExit("peak chunk exceeded --chunk-rows")
    return 0


if __name__ == "__main__":
    sys.exit(main())
