#!/usr/bin/env bash
# CI/local gate: byte-compile the whole package, then run the tier-1 suite.
#
#   scripts/check.sh            # full suite (what CI runs)
#   scripts/check.sh --fast     # skip bench-style tests (-m "not slow")
#   scripts/check.sh --par      # process-parallel executor/store-stress
#                               # tests only, plus marker-hygiene checks
#   scripts/check.sh -k store   # extra args are passed through to pytest
set -euo pipefail
cd "$(dirname "$0")/.."

run_pytest() {
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest "$@"
}

PYTEST_ARGS=(-x -q)
case "${1:-}" in
--fast)
    shift
    PYTEST_ARGS+=(-m "not slow")
    ;;
--par)
    shift
    python -m compileall -q src
    # Marker hygiene: every `par` test must also carry `slow`, or it leaks
    # into the default fast tier (`--fast` selects -m "not slow").  pytest
    # exits 5 when the selection collects nothing — that is the good case.
    if run_pytest --collect-only -q -m "par and not slow" >/dev/null 2>&1; then
        echo "error: par-marked tests without the slow marker would leak" \
             "into the fast tier-1 run:" >&2
        run_pytest --collect-only -q -m "par and not slow" >&2
        exit 1
    fi
    exec_status=0
    run_pytest -x -q -m par "$@" || exec_status=$?
    exit "$exec_status"
    ;;
esac

python -m compileall -q src
run_pytest "${PYTEST_ARGS[@]}" "$@"
