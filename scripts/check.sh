#!/usr/bin/env bash
# CI/local gate: byte-compile the whole package, then run the tier-1 suite.
#
#   scripts/check.sh            # full suite (what CI runs)
#   scripts/check.sh --fast     # skip bench-style tests (-m "not slow")
#
# Every mode first runs the engine import-hygiene guard: repro.dse.engine
# must import with nothing beyond NumPy + the stdlib.
#   scripts/check.sh --par      # process-parallel executor/store-stress
#                               # tests only, plus marker-hygiene checks
#   scripts/check.sh --service  # service smoke: boot `python -m repro
#                               # serve` on an ephemeral port, submit two
#                               # workloads over HTTP, assert digests match
#                               # direct Session.run, clean shutdown
#   scripts/check.sh --fleet    # fleet smoke: boot a router + 2 worker
#                               # subprocesses sharing one store, route
#                               # over HTTP, assert digests match direct
#                               # Session.run and the whole fleet drains
#                               # cleanly
#   scripts/check.sh --large    # out-of-core smoke: stream a >=10^5-
#                               # candidate space under a hard RSS ceiling
#                               # and assert streamed results are digest-
#                               # identical to explore_columnar on the
#                               # paper-scale subspace, then repeat the
#                               # large run with --jobs 2 chunk-shard
#                               # workers (same ceiling, digest identity
#                               # vs the serial fold)
#   scripts/check.sh --sim      # simulation tier: the vectorized-vs-scalar
#                               # differential suite plus the frame/golden
#                               # boundary-contract regressions, with a
#                               # wall-clock budget so the Hypothesis suite
#                               # can't silently balloon
#   scripts/check.sh --obs      # observability tier: the tracing/metrics/
#                               # propagation suite, then a live-server
#                               # smoke — client root span rides the
#                               # X-Repro-Trace header across a real
#                               # process boundary, the trace comes back
#                               # via GET /trace/<id> and the CLI, and
#                               # /metrics strict-parses as 0.0.4 with
#                               # correctly typed families
#   scripts/check.sh -k store   # extra args are passed through to pytest
set -euo pipefail
cd "$(dirname "$0")/.."

run_pytest() {
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest "$@"
}

check_engine_imports() {
    # Import hygiene: the columnar engine must import with nothing beyond
    # NumPy and the stdlib — test-only/optional packages sneaking into its
    # import closure would break minimal production deployments.  The
    # blocked import hook fails the build the moment one is touched.
    python - <<'PYEOF'
import builtins
import sys

sys.path.insert(0, "src")
BLOCKED = ("hypothesis", "pytest", "matplotlib", "pandas", "scipy", "yaml")
real_import = builtins.__import__


def guarded(name, *args, **kwargs):
    root = name.split(".")[0]
    if root in BLOCKED:
        raise SystemExit(
            f"error: repro.dse.engine pulled optional dependency {root!r} "
            f"into its import closure (only NumPy + stdlib are allowed)")
    return real_import(name, *args, **kwargs)


builtins.__import__ = guarded
import repro.dse.engine  # noqa: F401  (the guard is the side effect)
import repro.dse.stream  # noqa: F401  (same deployment footprint)

non_stdlib = [name for name in BLOCKED if name in sys.modules]
assert not non_stdlib, non_stdlib
print(f"engine import guard ok ({len(sys.modules)} modules, "
      f"numpy {sys.modules['numpy'].__version__})")
PYEOF
}

check_simulation_imports() {
    # Same deployment-footprint rule for the simulation/validation layer:
    # it backs the `validate` job class in production services, so it must
    # import with nothing beyond NumPy + the stdlib.
    python - <<'PYEOF'
import builtins
import sys

sys.path.insert(0, "src")
BLOCKED = ("hypothesis", "pytest", "matplotlib", "pandas", "scipy", "yaml")
real_import = builtins.__import__


def guarded(name, *args, **kwargs):
    root = name.split(".")[0]
    if root in BLOCKED:
        raise SystemExit(
            f"error: repro.simulation pulled optional dependency {root!r} "
            f"into its import closure (only NumPy + stdlib are allowed)")
    return real_import(name, *args, **kwargs)


builtins.__import__ = guarded
import repro.simulation  # noqa: F401  (the guard is the side effect)
import repro.simulation.validation  # noqa: F401  (validate job backend)

non_stdlib = [name for name in BLOCKED if name in sys.modules]
assert not non_stdlib, non_stdlib
print(f"simulation import guard ok ({len(sys.modules)} modules, "
      f"numpy {sys.modules['numpy'].__version__})")
PYEOF
}

check_obs_imports() {
    # The observability layer ships everywhere the engine does (every
    # server mounts a TraceStore, every session records metrics), so it
    # gets the same deployment-footprint rule: NumPy + stdlib only.
    python - <<'PYEOF'
import builtins
import sys

sys.path.insert(0, "src")
BLOCKED = ("hypothesis", "pytest", "matplotlib", "pandas", "scipy", "yaml")
real_import = builtins.__import__


def guarded(name, *args, **kwargs):
    root = name.split(".")[0]
    if root in BLOCKED:
        raise SystemExit(
            f"error: repro.obs pulled optional dependency {root!r} "
            f"into its import closure (only NumPy + stdlib are allowed)")
    return real_import(name, *args, **kwargs)


builtins.__import__ = guarded
import repro.obs  # noqa: F401  (the guard is the side effect)
import repro.obs.trace  # noqa: F401
import repro.obs.metrics  # noqa: F401
import repro.obs.profile  # noqa: F401

non_stdlib = [name for name in BLOCKED if name in sys.modules]
assert not non_stdlib, non_stdlib
print(f"obs import guard ok ({len(sys.modules)} modules, "
      f"numpy {sys.modules['numpy'].__version__})")
PYEOF
}

# The guards are cheap, so every mode runs them (CI's flagless invocation too).
check_engine_imports
check_simulation_imports
check_obs_imports

PYTEST_ARGS=(-x -q)
case "${1:-}" in
--fast)
    shift
    PYTEST_ARGS+=(-m "not slow")
    ;;
--service)
    shift
    python -m compileall -q src
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python scripts/service_smoke.py "$@"
    exit $?
    ;;
--fleet)
    shift
    python -m compileall -q src
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python scripts/fleet_smoke.py "$@"
    exit $?
    ;;
--large)
    shift
    python -m compileall -q src
    # A fresh process so ru_maxrss measures the streaming run alone.  The
    # parallel variant (--jobs 2) runs the serial fold and the two-worker
    # fan-out in the same process under the same RSS ceiling and fails on
    # any digest divergence between them.
    python scripts/large_smoke.py --jobs 2 "$@"
    exit $?
    ;;
--sim)
    shift
    python -m compileall -q src
    # Budgeted differential run: the property suite is the bit-identity
    # oracle for every vectorized path, and it must stay fast enough to run
    # on every push.  `timeout` turns a runaway Hypothesis search into a
    # hard failure instead of a stalled CI job.
    sim_status=0
    timeout 300 env PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m pytest -x -q \
        tests/property/test_simulator_differential.py \
        tests/simulation/test_frame_and_golden.py \
        tests/service/test_validate_job.py "$@" || sim_status=$?
    if [ "$sim_status" -eq 124 ]; then
        echo "error: simulation tier exceeded its 300s wall-clock budget" >&2
    fi
    exit "$sim_status"
    ;;
--obs)
    shift
    python -m compileall -q src
    # The full observability suite first (span trees, header codec,
    # capture/absorb handoff, typed exposition, propagation edges), then
    # the live smoke: a real `python -m repro serve` subprocess proves
    # the X-Repro-Trace header joins traces across a process boundary
    # and /metrics survives the strict 0.0.4 parser.
    run_pytest -x -q tests/obs "$@"
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python scripts/obs_smoke.py
    exit $?
    ;;
--par)
    shift
    python -m compileall -q src
    # Marker hygiene: every `par` test must also carry `slow`, or it leaks
    # into the default fast tier (`--fast` selects -m "not slow").  pytest
    # exits 5 when the selection collects nothing — that is the good case.
    if run_pytest --collect-only -q -m "par and not slow" >/dev/null 2>&1; then
        echo "error: par-marked tests without the slow marker would leak" \
             "into the fast tier-1 run:" >&2
        run_pytest --collect-only -q -m "par and not slow" >&2
        exit 1
    fi
    exec_status=0
    run_pytest -x -q -m par "$@" || exec_status=$?
    exit "$exec_status"
    ;;
esac

python -m compileall -q src
run_pytest "${PYTEST_ARGS[@]}" "$@"
