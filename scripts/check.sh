#!/usr/bin/env bash
# CI/local gate: byte-compile the whole package, then run the tier-1 suite.
#
#   scripts/check.sh            # full suite (what CI runs)
#   scripts/check.sh --fast     # skip bench-style tests (-m "not slow")
#   scripts/check.sh -k store   # extra args are passed through to pytest
set -euo pipefail
cd "$(dirname "$0")/.."

PYTEST_ARGS=(-x -q)
if [[ "${1:-}" == "--fast" ]]; then
    shift
    PYTEST_ARGS+=(-m "not slow")
fi

python -m compileall -q src
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest "${PYTEST_ARGS[@]}" "$@"
