"""Out-of-core exploration of a 100k+-candidate design space.

The paper's blur case study (Section 4.1) enumerates 720 architectures —
9 output windows x 5 level splittings x 16 instance counts.  Widening the
instance-count axis to 2,300 turns the same shape knobs into a
103,500-candidate space; :mod:`repro.dse.stream` explores it without ever
materializing the full candidate table:

* ``plan_chunks`` slices the space into fixed-size chunks of one
  (window, split) group each — pure index arithmetic, no arrays;
* constraint pushdown proves, from the area model alone, how many
  instance counts of each group can possibly satisfy the area
  constraints, and prunes the rest *before* any column is built (the
  admitted set is always a prefix of the count axis, found by binary
  search on the exact engine-identical area formula);
* a :class:`StreamingFrontier` and a running top-k fold each chunk into
  bounded state — the final frontier is bit-identical to the in-memory
  engine's, whatever the chunk size or order;
* the admitted-prefix masks are cached by *shape* knobs only, so a
  re-exploration that changes a per-run knob (frame size, fps floor)
  skips the admission pass entirely and re-costs only the admitted rows;
* a frames-per-second floor is pushed down too: throughput is monotone in
  the instance count, so a second binary search admits only the count
  suffix that can meet the floor — intersected with the area prefix, the
  admitted band is pruned before any costing;
* independent chunks fan out across executor-strategy workers
  (``jobs=N`` / ``explore(stream=True, stream_jobs=4)`` /
  ``--stream --jobs 4`` on the CLI); each worker folds a shard into
  private state and the associative ``merge`` reduces them, bit-identical
  to the serial fold at any worker count.

Run with::

    python examples/large_space_demo.py
"""

from __future__ import annotations

import resource
import time

from repro.algorithms import get_algorithm
from repro.dse.constraints import DseConstraints
from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.stream import explore_stream, plan_chunks, stream_stats

CHUNK_ROWS = 512


def peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def main() -> None:
    # The Section 4.1 blur space with the instance-count axis widened
    # 9 windows x 5 splits x 2,300 counts = 103,500 candidates.
    explorer = DesignSpaceExplorer(
        get_algorithm("blur").kernel(),
        window_sides=tuple(range(1, 10)), max_depth=5,
        max_cones_per_depth=2300, synthesize_all=True)
    characterizations, _ = explorer.characterize_cones(10)
    space = explorer._space(10)
    usable = explorer.device.usable_capacity.luts

    # 1. chunk planning is index arithmetic: no candidate table exists yet
    chunks = plan_chunks(space, CHUNK_ROWS)
    print(f"{space.size():,} candidates planned as {len(chunks)} chunks "
          f"of <= {CHUNK_ROWS} rows (one (window, split) group per chunk)")

    # 2. stream with constraint pushdown: the device capacity bounds how
    #    many primary-cone instances each group can hold, so almost the
    #    whole count axis is discarded before a single column is built.
    constraints = DseConstraints(device_only=True)
    started = time.perf_counter()
    streamed = explore_stream(space, characterizations,
                              explorer.throughput_model, 1024, 768,
                              constraints, usable, chunk_rows=CHUNK_ROWS,
                              top_k=5)
    elapsed = time.perf_counter() - started
    print(f"streamed in {elapsed * 1000:.0f} ms "
          f"({streamed.space_rows / elapsed:,.0f} candidates/s): "
          f"{streamed.pruned_rows:,} rows ({streamed.pruned_fraction:.1%}) "
          f"pruned before costing, {streamed.chunks_skipped} of "
          f"{streamed.chunks_total} chunks never materialized")
    print(f"bounded state: peak chunk {streamed.peak_chunk_rows} rows, "
          f"frontier never exceeded {streamed.frontier_peak} points, "
          f"process peak RSS {peak_rss_mb():.0f} MB")
    print()

    # 3. the running top-k gives the k fastest feasible designs without
    #    keeping anything but k triples around
    print("5 fastest feasible architectures (running top-k):")
    for point in streamed.top_points:
        print(f"  {point.architecture.label():<24} "
              f"{point.frames_per_second:8.1f} fps  "
              f"{point.area_luts:10.0f} LUTs")
    print()

    # 4. incremental re-explore: a new frame geometry is a per-run knob —
    #    the admitted-prefix masks are reused, only throughput re-costs
    again = explore_stream(space, characterizations,
                           explorer.throughput_model, 640, 480,
                           constraints, usable, chunk_rows=CHUNK_ROWS)
    cache = stream_stats()
    print(f"re-explored at 640x480: mask cache "
          f"{'hit' if again.mask_cache_hit else 'miss'} "
          f"(hits={cache['hits']}, misses={cache['misses']}) — "
          f"the admission pass was skipped, "
          f"{len(again.pareto)} Pareto points")

    # 5. the frontier is the exact frontier: the Pareto set of the
    #    103,500-candidate space, held at no point in full in memory
    smallest, fastest = streamed.pareto[0], streamed.pareto[-1]
    print(f"frontier spans {smallest.area_luts:.0f} LUTs "
          f"({smallest.frames_per_second:.1f} fps) to "
          f"{fastest.area_luts:.0f} LUTs "
          f"({fastest.frames_per_second:.1f} fps) "
          f"across {len(streamed.pareto)} points")
    print()

    # 6. throughput-side pushdown + parallel dispatch: an fps floor
    #    admits only a suffix of each group's count axis (throughput is
    #    monotone in the instance count), pruned before costing like the
    #    area prefix; and the chunk schedule fans out across workers,
    #    merged back bit-identically.
    floored = DseConstraints(device_only=True, min_frames_per_second=30.0)
    serial = explore_stream(space, characterizations,
                            explorer.throughput_model, 1024, 768,
                            floored, usable, chunk_rows=CHUNK_ROWS)
    parallel = explore_stream(space, characterizations,
                              explorer.throughput_model, 1024, 768,
                              floored, usable, chunk_rows=CHUNK_ROWS,
                              jobs=4, executor="threads")
    identical = ([p.to_dict() for p in parallel.pareto]
                 == [p.to_dict() for p in serial.pareto])
    print(f"30 fps floor: {serial.throughput_pruned_rows:,} rows pruned "
          f"throughput-side before costing "
          f"({serial.pruned_fraction:.2%} pruned in total); "
          f"jobs=4 fan-out digest-identical to the serial fold: "
          f"{identical}")


if __name__ == "__main__":
    main()
