"""Service mode: a long-lived exploration daemon with coalescing clients.

The batch API answers one process's workloads; ``repro.service`` serves
*everyone's*.  One `ReproServer` owns a single shared `Session`, so every
client that hits it — in-process or over HTTP — shares one
characterization cache, one persistent store binding, and one columnar
architecture table.  This demo shows the three service-tier behaviors on
top of that sharing:

1. request coalescing — concurrent identical submissions ride one
   computation and all get the same result;
2. priority scheduling — interactive jobs overtake a queued background
   sweep;
3. batched dispatch — a burst of device/format scenarios is re-costed as
   one ``run_many`` batch against the shared table.

Run with:  PYTHONPATH=src python examples/service_demo.py

Shell equivalent of the HTTP part:

    python -m repro serve --store ~/.cache/repro &
    python -m repro submit blur --priority interactive
"""

import threading

from repro.api import Workload
from repro.ir.operators import DataFormat
from repro.service import ReproClient, ReproServer

#: Small knobs so the demo finishes in seconds.
SMALL = dict(iterations=4, window_sides=(1, 2, 3), max_depth=2,
             max_cones_per_depth=4, frame_width=640, frame_height=480)


def main() -> None:
    blur = Workload.from_algorithm("blur", **SMALL)

    # ------------------------------------------------------------------ #
    # 1. coalescing: 8 "users" ask for the same exploration at once; the
    #    queue folds them onto one job and the session synthesizes once.
    with ReproServer(start=False) as server:   # paused: let the burst land
        client = ReproClient(server)
        handles = [client.submit(blur, priority="interactive")
                   for _ in range(8)]
        server.start()
        results = [handle.result(timeout=60) for handle in handles]
        stats = server.stats()
        print(f"coalescing: {stats['queue']['submitted']} submissions -> "
              f"{stats['queue']['completed']} computation(s), hit-rate "
              f"{stats['queue']['coalesce_hit_rate']:.0%}, "
              f"{stats['session']['synthesis_runs']} synthesis runs, "
              f"{len(results[0].pareto)} Pareto points each")

    # ------------------------------------------------------------------ #
    # 2. priorities + 3. batched dispatch: queue a background sweep of
    #    four device/format scenarios, then an interactive request; the
    #    interactive job completes first, and the sweep rides batched
    #    run_many dispatches over one shared architecture table.
    finished = []
    server = ReproServer(
        start=False,
        on_event=lambda e: finished.append(e.detail)
        if e.kind == "job-finished" else None)
    try:
        client = ReproClient(server)
        sweep = [client.submit(blur.replace(device=device,
                                            data_format=data_format),
                               priority="background")
                 for device in ("xc6vlx760", "xc2vp30")
                 for data_format in (DataFormat.FIXED16, DataFormat.FIXED32)]
        urgent = client.submit(
            Workload.from_algorithm("jacobi", **SMALL),
            priority="interactive")
        server.start()
        urgent.result(timeout=60)
        for handle in sweep:
            handle.result(timeout=120)
        stats = server.stats()
        print(f"priorities: interactive job finished "
              f"{'first' if finished[0] == urgent.id else 'NOT first'} "
              f"of {len(finished)} jobs")
        print(f"batching:   sweep dispatched as batch sizes "
              f"{stats['scheduler']['recent_batch_sizes']} "
              f"(shared-table hits: {stats['shared_table']['hits']})")
    finally:
        server.close()

    # ------------------------------------------------------------------ #
    # the same protocol over HTTP, stdlib only (what `python -m repro
    # serve` + `python -m repro submit` speak)
    server = ReproServer()
    try:
        host, port = server.serve_http("127.0.0.1", 0)  # 0 = ephemeral
        remote = ReproClient(f"http://{host}:{port}")
        print(f"http:       {remote.healthz()['state']} on port {port}; "
              f"blur over the wire -> "
              f"{len(remote.run(blur, timeout=60).pareto)} Pareto points "
              f"(served from the session cache)")
    finally:
        server.close()


if __name__ == "__main__":
    main()
