"""Bring your own ISL: from a C kernel you wrote to VHDL and a design space.

The flow's input is plain C (Algorithm 1 of the paper).  This example defines
a new algorithm — an iterated anisotropic-like smoothing step — directly as C
source, then:

* extracts the stencil kernel and verifies the ISL properties
  (domain narrowness, translation invariance),
* inspects the dependency cone geometry,
* runs a quick design-space exploration,
* emits the VHDL entity of one cone.

Run with::

    python examples/custom_kernel_from_c.py
"""

from __future__ import annotations

from repro import FlowOptions, HlsFlow
from repro.flow.report import pareto_table
from repro.ir.operators import DataFormat
from repro.symbolic.cone_expression import ConeExpressionBuilder
from repro.symbolic.invariance import verify_kernel

MY_KERNEL_C = """
/* One step of an edge-preserving smoothing filter: the centre element moves
 * towards the average of its axis neighbours, but never further than a
 * fixed clamp (a cheap approximation of anisotropic diffusion). */
#define RATE 0.35f
#define CLAMP 0.05f

void smooth(float out[H][W], const float u[H][W]) {
    for (int y = 1; y < H - 1; y++) {
        for (int x = 1; x < W - 1; x++) {
            float average = 0.25f * (u[y][x + 1] + u[y][x - 1]
                                   + u[y + 1][x] + u[y - 1][x]);
            float delta = RATE * (average - u[y][x]);
            float limited = fminf(fmaxf(delta, -CLAMP), CLAMP);
            out[y][x] = u[y][x] + limited;
        }
    }
}
"""


def main() -> None:
    options = FlowOptions(
        data_format=DataFormat.FIXED16,
        frame_width=640,
        frame_height=480,
        iterations=8,
        window_sides=(1, 2, 3, 4),
        max_depth=4,
        max_cones_per_depth=6,
    )
    flow = HlsFlow(MY_KERNEL_C, options)

    print("extracted kernel:")
    print(flow.kernel)
    report = verify_kernel(flow.kernel)
    print(f"ISL verification: translation invariant={report.is_translation_invariant}, "
          f"domain narrow={report.is_domain_narrow} "
          f"(radius {report.radius}, {report.footprint_size} reads)")
    print()

    cone = ConeExpressionBuilder(flow.kernel).build(window_side=2, depth=3)
    print("cone (window 2x2, depth 3):")
    print(f"  input window : {cone.domain.input_window.width}x"
          f"{cone.domain.input_window.height} elements")
    print(f"  registers    : {cone.register_count} (with data reuse)")
    print(f"  operations   : {cone.operation_count}")
    print()

    result = flow.run()
    print(pareto_table(result.pareto, title="Pareto set for the custom kernel"))
    best = result.best_fitting_point()
    print(f"\nbest on device: {best.summary()}\n")

    files = flow.generate_vhdl(best)
    entity = next(name for name in sorted(files) if name.endswith(".vhd")
                  and "pkg" not in name and "top" not in name)
    print(f"--- head of {entity} ---")
    print("\n".join(files[entity].splitlines()[:14]))


if __name__ == "__main__":
    main()
