"""Case study 4.1 — design-space exploration of the iterative Gaussian filter.

Reproduces, on a reduced scale, the three IGF experiments of the paper:

* Figure 5 — accuracy of the register-based area model (Equation 1),
* Figure 6 — the Pareto curve (time per frame vs kLUTs),
* Figure 7 — throughput vs output-window size on the Virtex-6, showing that
  cone depths dividing the iteration count behave best,

and compares the resulting architectures with the published literature
figures.  Run with::

    python examples/gaussian_blur_design_space.py
"""

from __future__ import annotations

from repro import get_algorithm
from repro.baselines.manual_designs import literature_design
from repro.dse.explorer import DesignSpaceExplorer
from repro.flow.report import area_validation_table, pareto_table, throughput_table
from repro.ir.operators import DataFormat
from repro.synth.fpga_device import VIRTEX6_XC6VLX760


def main() -> None:
    spec = get_algorithm("blur")
    explorer = DesignSpaceExplorer(
        spec.kernel(),
        device=VIRTEX6_XC6VLX760,
        data_format=DataFormat.FIXED16,
        window_sides=(1, 2, 3, 4, 5, 6, 7, 8, 9),
        max_depth=5,
        max_cones_per_depth=16,
        synthesize_all=True,
    )
    exploration = explorer.explore(total_iterations=10,
                                   frame_width=1024, frame_height=768)

    print("=== Figure 5: area estimation accuracy (Equation 1) ===")
    print(area_validation_table(exploration.area_validations))
    print(f"synthesis runs a full sweep would need : {len(exploration.characterizations)}")
    print(f"synthesis runs the calibration needs   : 2 per depth family")
    print()

    print("=== Figure 6: Pareto curve (1024x768) ===")
    print(pareto_table(exploration.pareto[:15], title="first 15 Pareto points"))
    print()

    print("=== Figure 7: throughput vs window area on the XC6VLX760 ===")
    print(throughput_table(exploration))
    best = exploration.best_fitting_point()
    print()
    print(f"best architecture on the device: {best.summary()}")

    print()
    print("=== comparison with the literature (Section 4.1) ===")
    cope = literature_design("cope_convolution")
    published = literature_design("paper_cone_igf")
    print(f"manual convolution design [16]   : {cope.fps((1024, 768)):6.1f} fps "
          f"(Virtex-II Pro)")
    print(f"paper's automatic flow (published): {published.fps((1024, 768)):6.1f} fps "
          f"(Virtex-6)")
    print(f"this reproduction                 : {best.frames_per_second:6.1f} fps "
          f"(Virtex-6, simulated synthesis backend)")


if __name__ == "__main__":
    main()
