"""Observability: one connected trace across client, fleet, and workers.

``repro.obs`` threads a single trace through every layer the repo has
grown: the submitting client opens a root span, the trace context rides
the ``X-Repro-Trace`` HTTP header into the fleet router, hops to the
owning worker, follows the job through the scheduler into the session
pipeline, and fans out with the chunk-shard workers of a streamed
exploration — every span carries the same ``trace_id`` and parents back
to the caller's root.  This demo shows the full loop:

1. a client-side root span + one fleet submit of a *streamed* workload
   → every server-side span (route, job, dispatch, stages, stream
   shards) joins the caller's trace;
2. fetching the assembled tree back via ``GET /trace/<id>`` and walking
   it as an indented span tree with wall times;
3. exporting the same spans as JSONL (one span per line, grep-able) and
   as Chrome ``trace_event`` JSON — load the file at ``chrome://tracing``
   or https://ui.perfetto.dev to see the timeline;
4. the typed metrics the run produced (counters vs gauges vs histogram
   bucket families on ``GET /metrics``).

Run with:  PYTHONPATH=src python examples/trace_demo.py

Shell equivalent (real processes):

    python -m repro serve --port 8177 &
    python -m repro submit blur --server http://127.0.0.1:8177
    # ... prints `trace: <id>`; then:
    python -m repro trace <id> --server http://127.0.0.1:8177
    python -m repro trace <id> --chrome -o trace.json
"""

import json
import os
import tempfile

from repro.api import Workload
from repro.fleet import FleetRouter
from repro.obs import trace
from repro.service import ReproClient

#: Small knobs so the demo finishes in seconds; ``stream=True`` routes the
#: exploration through the out-of-core engine so the trace shows real
#: chunk-shard worker spans.
SMALL = dict(iterations=4, window_sides=(1, 2, 3), max_depth=2,
             max_cones_per_depth=4, frame_width=640, frame_height=480,
             stream=True, chunk_rows=2, stream_jobs=2)


def print_tree(spans) -> None:
    """Walk the span list as the tree it encodes, children by start time."""
    children = {}
    for span in spans:
        children.setdefault(span["parent_id"], []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: span["start_s"])

    def walk(span, depth):
        attrs = span["attributes"]
        detail = ", ".join(f"{key}={value}"
                           for key, value in sorted(attrs.items())
                           if key in ("workload", "kind", "state", "chunks",
                                      "worker", "jobs"))
        print(f"    {'  ' * depth}{span['name']:<{24 - 2 * depth}} "
              f"{span['wall_s'] * 1e3:8.2f} ms"
              + (f"  ({detail})" if detail else ""))
        for child in children.get(span["span_id"], []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)


def main() -> None:
    workload = Workload.from_algorithm("blur", **SMALL)

    with FleetRouter.local(2, healthcheck_interval_s=0) as fleet:
        client = ReproClient(fleet)

        # -------------------------------------------------------------- #
        # 1. one submit under a client-side root span: the trace context
        #    crosses every hop, so the receipt's trace id IS the root's.
        trace.enable()
        with trace.span("demo.submit", workload=workload.name) as root:
            handle = client.submit(workload, role="operator")
            result = handle.result(timeout=120)
        print(f"submitted:  {workload.name} -> {len(result.pareto)} "
              f"Pareto point(s), trace {handle.trace_id[:12]}... "
              f"(same as the root: {handle.trace_id == root.trace_id})")

        # -------------------------------------------------------------- #
        # 2. fetch the assembled tree back from the fleet and walk it.
        spans = fleet.trace(root.trace_id)["spans"]
        shards = sum(1 for span in spans if span["name"] == "stream.shard")
        print(f"trace:      {len(spans)} span(s), one trace id, "
              f"{shards} stream-shard worker span(s)")
        print_tree(spans)

        # -------------------------------------------------------------- #
        # 3. export: JSONL for grep, Chrome trace_event for a timeline.
        with tempfile.TemporaryDirectory() as scratch:
            path = os.path.join(scratch, "trace.json")
            with open(path, "w", encoding="utf-8") as sink:
                json.dump(trace.to_chrome_trace(spans), sink)
            events = json.load(open(path, encoding="utf-8"))["traceEvents"]
            print(f"export:     {len(trace.to_jsonl(spans).splitlines())} "
                  f"JSONL line(s); {len(events)} Chrome trace events "
                  f"(load at chrome://tracing)")

        # -------------------------------------------------------------- #
        # 4. the same run left typed metrics behind: monotone totals are
        #    counters, levels are gauges, latencies are bucket families.
        families = {}
        for line in fleet.metrics_text().splitlines():
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split()
                families.setdefault(kind, []).append(name)
        wait = [name for name in families.get("histogram", [])
                if "queue_wait" in name]
        print(f"metrics:    {len(families.get('counter', []))} counter / "
              f"{len(families.get('gauge', []))} gauge / "
              f"{len(families.get('histogram', []))} histogram families "
              f"(e.g. {wait[0]})")

    trace.disable()


if __name__ == "__main__":
    main()
