"""Quickstart: run the cone-based HLS flow on the iterative Gaussian filter.

This is the 60-second tour of the public API:

1. pick a registered ISL algorithm (or write your own kernel),
2. run the flow (dependency analysis, area/throughput estimation,
   design-space exploration, Pareto extraction),
3. inspect the Pareto set and generate VHDL for a chosen design point.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import FlowOptions, HlsFlow, get_algorithm
from repro.flow.report import area_validation_table, flow_summary, pareto_table
from repro.ir.operators import DataFormat


def main() -> None:
    # 1. the iterative Gaussian filter, exactly as in Section 4.1 of the paper
    spec = get_algorithm("blur")
    kernel = spec.kernel()
    print(kernel)
    print()

    # 2. run the flow on a reduced design space (fast: a few seconds)
    options = FlowOptions(
        data_format=DataFormat.FIXED16,
        frame_width=1024,
        frame_height=768,
        iterations=spec.default_iterations,
        window_sides=(1, 2, 3, 4, 5, 6),
        max_depth=3,
        max_cones_per_depth=8,
        synthesize_all=True,      # also synthesise every cone to validate Eq. 1
    )
    flow = HlsFlow(kernel, options)
    result = flow.run()

    print(flow_summary(result.exploration))
    print()
    print(area_validation_table(result.exploration.area_validations))
    print()
    print(pareto_table(result.pareto, title="Pareto set (area vs time per frame)"))
    print()

    # 3. generate synthesizable VHDL for the fastest architecture that fits
    best = result.best_fitting_point()
    files = flow.generate_vhdl(best)
    print(f"best architecture on the device: {best.summary()}")
    print(f"generated VHDL files: {sorted(files)}")
    entity = next(name for name in files if name.endswith(".vhd")
                  and "pkg" not in name and "top" not in name)
    print()
    print(f"--- first lines of {entity} ---")
    print("\n".join(files[entity].splitlines()[:12]))


if __name__ == "__main__":
    main()
