"""Quickstart: run the cone-based HLS flow on the iterative Gaussian filter.

This is the 60-second tour of the public API (:mod:`repro.api`):

1. declare a :class:`Workload` — a registered ISL algorithm (or your own
   kernel / C source) plus device, data format, frame geometry, and
   design-space knobs;
2. run it in a :class:`Session` (dependency analysis, area/throughput
   estimation, design-space exploration, Pareto extraction) — sessions cache
   cone characterizations, so related workloads share the expensive work;
3. inspect the Pareto set, serialize the result to JSON, and generate VHDL
   for a chosen design point;
4. plug a custom estimation backend into the flow through the named registry
   (``register_backend``) — ten lines, no ``repro`` module touched;
5. point a session at a persistent store directory so a later process reruns
   the same workloads with zero synthesis;
6. scale a batch with ``run_many(..., executor=...)`` — ``serial``,
   ``threads`` (default), or ``processes``, which shards cold CPU-bound
   sweeps across worker processes and returns byte-identical results;
7. sweep one kernel across devices *and* data formats in a single batch —
   every scenario is evaluated by the columnar engine
   (:mod:`repro.dse.engine`) against one shared architecture table, so the
   candidate space is enumerated once, not once per workload;
8. serve exploration traffic from a long-lived daemon
   (:mod:`repro.service`): ``python -m repro serve --store DIR`` starts an
   HTTP job API over one shared session; ``ReproClient.submit(...)`` (or
   ``python -m repro submit blur``) files jobs that coalesce with
   identical in-flight requests, schedule by priority class, and ride
   batched ``run_many`` dispatches;
9. scale the service tier out to a fleet (:mod:`repro.fleet`): a
   ``FleetRouter`` fronts N workers and routes each submission by a
   consistent hash of its characterization key, so identical workloads
   always land on the same worker (coalescing keeps working fleet-wide)
   and a shared artifact store makes anything synthesized on one worker a
   disk hit on every other.  ``python -m repro fleet --workers 4`` from
   the shell; ``python -m repro submit blur --fleet URL`` to use it;
10. stream million-candidate spaces out of core (:mod:`repro.dse.stream`):
    ``stream=True`` (or just a big enough space — exploration auto-selects
    streaming above ~200k candidates) evaluates fixed-size chunks against
    a bounded running frontier instead of materializing every column, with
    infeasible rows pruned *before* they are ever costed.  Same frontier,
    bit for bit.  ``python -m repro explore blur --stream --chunk-rows
    4096`` from the shell (``sweep`` takes the same flags); see
    ``examples/large_space_demo.py`` for the full out-of-core tour.

Run with::

    python examples/quickstart.py

The same flow is available from the shell: ``python -m repro explore blur``
(add ``--store`` to persist across invocations, ``--executor processes
--jobs 4`` to fan a cold sweep out over worker processes).

When to pick which executor: ``processes`` wins on *cold*, CPU-bound sweeps
of several distinct kernels — characterization is pure Python, so threads
are GIL-serialized while processes genuinely run in parallel.  ``threads``
wins when the batch is warm (persistent-store hits are I/O-bound and a warm
``processes`` run detects the hits and stays in-process anyway) or when all
workloads share one kernel (one characterization key cannot be sharded).
"""

from __future__ import annotations

import dataclasses
import json
import tempfile

from repro import FlowResult, Session, Workload, register_backend
from repro.estimation import RegisterAreaModel
from repro.flow.report import area_validation_table, flow_summary, pareto_table
from repro.ir.operators import DataFormat


def main() -> None:
    # 1. the iterative Gaussian filter, exactly as in Section 4.1 of the
    #    paper, on a reduced design space (fast: a few seconds)
    workload = Workload.from_algorithm(
        "blur",
        data_format=DataFormat.FIXED16,
        frame_width=1024,
        frame_height=768,
        window_sides=(1, 2, 3, 4, 5, 6),
        max_depth=3,
        max_cones_per_depth=8,
        synthesize_all=True,      # also synthesise every cone to validate Eq. 1
    )
    print(workload.resolve_kernel())
    print()

    # 2. run it in a session
    session = Session()
    result = session.run(workload)

    print(flow_summary(result.exploration))
    print()
    print(area_validation_table(result.exploration.area_validations))
    print()
    print(pareto_table(result.pareto, title="Pareto set (area vs time per frame)"))
    print()

    # ... a second frame size reuses every cone characterization: no new
    # synthesis runs, only the (cheap) throughput estimation re-runs.
    session.run(workload.replace(frame_width=640, frame_height=480))
    print(f"after a second frame size: {session.stats.synthesis_runs} "
          f"synthesis runs total, "
          f"{session.stats.characterization_cache_hits} cache hit(s)")
    print()

    # 3a. every result round-trips through JSON
    payload = json.dumps(result.to_dict())
    restored = FlowResult.from_dict(json.loads(payload))
    assert restored.pareto == result.pareto
    print(f"serialized result: {len(payload)} bytes of JSON, "
          f"Pareto set identical after round-trip")
    print()

    # 3b. generate synthesizable VHDL for the fastest architecture that fits
    best = result.best_fitting_point()
    files = session.generate_vhdl(workload, point=best)
    print(f"best architecture on the device: {best.summary()}")
    print(f"generated VHDL files: {sorted(files)}")
    entity = next(name for name in files if name.endswith(".vhd")
                  and "pkg" not in name and "top" not in name)
    print()
    print(f"--- first lines of {entity} ---")
    print("\n".join(files[entity].splitlines()[:12]))
    print()

    # 4. a custom estimation backend in ~10 lines: subclass (or reimplement)
    #    the Equation-1 model, register it under a name, and select it per
    #    workload — synthesizers/throughput models/devices plug in the same
    #    way ("synthesizer"/"throughput"/"device" kinds).
    class PessimisticAreaModel(RegisterAreaModel):
        """Equation 1 plus a 15% routing-congestion margin."""

        def estimate_series(self, register_counts):
            return [dataclasses.replace(e, estimated_area_luts=1.15
                                        * e.estimated_area_luts)
                    for e in super().estimate_series(register_counts)]

    register_backend("area", "pessimistic", PessimisticAreaModel)
    # apples to apples: both runs rely on the area *estimator* for the
    # non-calibration cones (synthesize_all off), differing only in backend
    analytic = session.run(workload.replace(synthesize_all=False))
    pessimistic = session.run(workload.replace(
        synthesize_all=False, area_estimator="pessimistic"))
    print(f"custom 'pessimistic' area backend: largest design point "
          f"{max(p.area_luts for p in pessimistic.design_points):.0f} LUTs "
          f"vs {max(p.area_luts for p in analytic.design_points):.0f} "
          f"with the built-in Equation-1 estimator")
    print()

    # 5. persistence: Session(store=DIR) mirrors characterizations and
    #    results to disk, so a *new process* (or `python -m repro sweep
    #    --store DIR`) resumes without re-synthesizing anything.
    with tempfile.TemporaryDirectory() as store_dir:
        Session(store=store_dir).run(workload)          # cold: pays synthesis
        warm = Session(store=store_dir)                 # fresh session ≙ new process
        warm.run(workload)
        print(f"warm rerun from {store_dir}: "
              f"{warm.stats.synthesis_runs} synthesis runs, "
              f"{warm.stats.store_disk_hits} disk hit(s)")
    print()

    # 6. batch scheduling is pluggable: a cold multi-kernel sweep shards
    #    across worker processes (the characterization work is CPU-bound
    #    Python, so threads cannot overlap it), while warm batches are
    #    answered in-process either way.  Results are byte-identical
    #    whatever the strategy or worker count.
    batch = [workload.replace(algorithm=name)
             for name in ("blur", "jacobi", "heat")]
    parallel = Session()
    results = parallel.run_many(batch, executor="processes", max_workers=3)
    print(f"process-sharded sweep: {len(results)} kernels explored, "
          f"{parallel.stats.synthesis_runs} synthesis runs merged back "
          f"into the parent session")
    print()

    # 7. multi-device / multi-format frontiers from one shared table: the
    #    columnar engine enumerates the candidate space once (it depends
    #    only on the shape knobs) and re-costs it per scenario with array
    #    arithmetic, so adding a device or a number format to the sweep
    #    adds estimation work, not enumeration work.  Same thing from the
    #    shell:  python -m repro sweep --algorithms blur \
    #                --devices xc6vlx760,xc2vp30 --formats fixed16,fixed32
    scenarios = [
        workload.replace(synthesize_all=False, device=device,
                         data_format=data_format)
        for device in ("xc6vlx760", "xc2vp30")
        for data_format in (DataFormat.FIXED16, DataFormat.FIXED32)
    ]
    sweep_session = Session()
    frontiers = sweep_session.run_many(scenarios)
    print("multi-device/multi-format frontiers (one shared table):")
    for scenario, result in zip(scenarios, frontiers):
        best = result.best_fitting_point()
        fastest = "-" if best is None else f"{best.frames_per_second:7.1f} fps"
        print(f"  {scenario.device.name:<12} {scenario.data_format.value:<8} "
              f"{len(result.pareto):>2} Pareto points   best {fastest}")
    print()

    # 8. service mode: the same workloads served by a long-lived daemon.
    #    One ReproServer = one shared session behind a job API; identical
    #    in-flight submissions coalesce onto one computation, bursts ride
    #    batched run_many dispatches, and everything is also reachable
    #    over HTTP:  python -m repro serve --store DIR   then
    #                python -m repro submit blur --priority interactive
    #    (see examples/service_demo.py for the full tour)
    from repro.service import ReproClient, ReproServer

    server = ReproServer(start=False)   # paused: let the burst land first
    try:
        client = ReproClient(server)
        handles = [client.submit(workload.replace(synthesize_all=False),
                                 priority="interactive")
                   for _ in range(4)]
        server.start()
        pareto_sizes = {len(h.result(timeout=60).pareto) for h in handles}
        stats = server.stats()
        print(f"service mode: {stats['queue']['submitted']} submissions "
              f"coalesced into {stats['queue']['completed']} computation(s) "
              f"(hit-rate {stats['queue']['coalesce_hit_rate']:.0%}), "
              f"identical frontiers: {len(pareto_sizes) == 1}")
    finally:
        server.close()
    print()

    # 9. fleet mode: the same job API fronting several workers at once.
    #    The router hashes each workload's characterization key onto a
    #    consistent-hash ring, so placement is deterministic, duplicates
    #    still coalesce (same key -> same worker), and the shared store
    #    turns the whole fleet into one cache: the session-5 store above
    #    already holds this workload, so a fresh 3-worker fleet serves it
    #    with zero synthesis.  (see examples/fleet_demo.py for failover,
    #    load shedding, and admission control)
    from repro.fleet import FleetRouter

    with tempfile.TemporaryDirectory() as store_dir:
        Session(store=store_dir).run(workload)           # warm the store
        with FleetRouter.local(3, store=store_dir) as fleet:
            client = ReproClient(fleet)
            client.submit(workload).result(timeout=60)
            stats = fleet.stats()
            routed_to = [name for name, entry in stats["workers"].items()
                         if entry["jobs_routed"]]
            print(f"fleet mode: routed to {routed_to[0]} of "
                  f"{len(stats['workers'])} workers, aggregate "
                  f"synthesis_runs={stats['aggregate']['synthesis_runs']} "
                  f"(served from the fleet-shared store)")
    print()

    # 10. out-of-core streaming: widen the instance-count axis and the
    #     space jumps from hundreds to tens of thousands of candidates.
    #     stream=True folds fixed-size chunks into a bounded running
    #     frontier — the result is identical to the in-memory engine, and
    #     the `streaming` block reports how many rows were pruned by the
    #     area constraints before ever being costed.
    from repro.dse.constraints import DseConstraints

    wide = workload.replace(synthesize_all=False, max_cones_per_depth=2000,
                            constraints=DseConstraints(device_only=True),
                            stream=True, chunk_rows=4096)
    streamed = Session().run(wide)
    meta = streamed.exploration.streaming
    print(f"streaming mode: {meta['space_rows']:,} candidates in "
          f"{meta['chunks_total']} chunks, {meta['pruned_fraction']:.1%} "
          f"pruned before costing, frontier never held more than "
          f"{meta['frontier_peak']} points "
          f"({len(streamed.pareto)} final Pareto points)")
    print()

    # 11. validation: simulate the cone pipeline on real frames and compare
    #     against the golden whole-frame model.  Interior pixels (those
    #     whose dependency cone never touches the frame border) must match
    #     exactly; the result also re-checks the vectorized simulator
    #     against its preserved scalar oracle.  The same evidence is
    #     available as a service job class: client.submit(w, job="validate")
    #     or `python -m repro validate blur --frames 640x480`.
    report = session.validate(
        workload.replace(frame_width=640, frame_height=480, iterations=6))
    print(f"validation: {report.summary()}")


if __name__ == "__main__":
    main()
