"""Case study 4.2 — Chambolle total-variation minimisation.

Demonstrates the two halves of the reproduction on the algorithm with the
more complex dependencies:

1. *functional correctness* — the cone architecture (evaluated tile by tile
   from the symbolically generated expressions) produces the same dual field
   as the plain whole-frame software execution, and actually denoises an
   image;
2. *hardware exploration* — the flow finds architectures whose throughput is
   in the same range as the hand-optimised design of Akin et al. [19].

Run with::

    python examples/chambolle_denoising.py
"""

from __future__ import annotations

import numpy as np

from repro import get_algorithm
from repro.dse.explorer import DesignSpaceExplorer
from repro.ir.operators import DataFormat
from repro.simulation.cone_simulator import FunctionalConeSimulator
from repro.simulation.frame import FrameSet
from repro.simulation.golden import GoldenExecutor
from repro.baselines.manual_designs import literature_design


def total_variation(image: np.ndarray) -> float:
    return float(np.abs(np.diff(image, axis=0)).sum()
                 + np.abs(np.diff(image, axis=1)).sum())


def main() -> None:
    spec = get_algorithm("chamb")
    kernel = spec.kernel()

    # --- 1. functional demonstration on a small noisy image ----------------
    rng = np.random.default_rng(0)
    height = width = 48
    clean = np.zeros((height, width))
    clean[:, width // 2:] = 1.0
    noisy = clean + rng.normal(0.0, 0.15, clean.shape)
    frames = FrameSet.for_kernel(kernel, height, width,
                                 initial={"g": noisy,
                                          "p": np.zeros((2, height, width))})

    iterations = 12
    golden = GoldenExecutor(kernel).run(frames, iterations)
    cones = FunctionalConeSimulator(kernel).run(frames, iterations,
                                                window_side=4, mode="region")

    margin = iterations + 1
    difference = np.abs(golden["p"].data - cones["p"].data)[
        :, margin:-margin, margin:-margin].max()
    print(f"cone architecture vs software golden model "
          f"(interior max abs difference): {difference:.2e}")

    p = golden["p"].data
    divergence = (p[0] - np.roll(p[0], 1, axis=1)) + (p[1] - np.roll(p[1], 1, axis=0))
    denoised = noisy - kernel.params["lambda"] * divergence
    print(f"total variation: noisy {total_variation(noisy):8.1f}  ->  "
          f"denoised {total_variation(denoised):8.1f}")

    # --- 2. hardware exploration -------------------------------------------
    explorer = DesignSpaceExplorer(
        kernel,
        data_format=DataFormat.FIXED16,
        window_sides=(2, 4, 6, 8),
        max_depth=3,
        max_cones_per_depth=8,
    )
    exploration = explorer.explore(total_iterations=11,
                                   frame_width=1024, frame_height=768)
    best = exploration.best_fitting_point()
    manual = literature_design("akin_chambolle")
    published = literature_design("paper_cone_chambolle")

    print()
    print("hardware exploration (1024x768, 11 iterations, XC6VLX760):")
    print(f"  best architecture found : {best.summary()}")
    print(f"  hand-optimised design [19]      : {manual.fps((1024, 768)):5.1f} fps")
    print(f"  paper's automatic flow (publish): {published.fps((1024, 768)):5.1f} fps")
    print(f"  this reproduction               : {best.frames_per_second:5.1f} fps")


if __name__ == "__main__":
    main()
