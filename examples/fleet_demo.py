"""Fleet mode: a consistent-hash routed worker fleet with shared caching.

``repro.service`` scales one machine; ``repro.fleet`` scales N of them.  A
`FleetRouter` fronts N `ReproServer` workers and routes every submission by
a consistent hash of the workload's characterization key, so placement is a
pure function of (key, worker ring) — independent of submission order,
timing, or which router process computes it.  This demo shows the four
fleet-tier behaviors on top of the service tier:

1. deterministic placement — two independently built fleets place the same
   workloads on the same workers, and same-key duplicates land on the same
   worker so request coalescing keeps working fleet-wide;
2. shared-store warming — a workload synthesized anywhere in the fleet is
   a disk hit everywhere else, because the workers share one artifact
   store: the fleet's second tier of caching;
3. failover — killing a worker moves only its ring segment to the
   successor, and its in-flight jobs are replayed idempotently;
4. load shedding + admission — bounded worker queues shed bursts with a
   ``Retry-After`` hint the retrying client honors, and role-based
   admission gates who may submit at which priority.

Run with:  PYTHONPATH=src python examples/fleet_demo.py

Shell equivalent (real processes, one router + two workers):

    python -m repro serve --port 8101 --store /tmp/repro-store &
    python -m repro serve --port 8102 --store /tmp/repro-store &
    python -m repro fleet --port 8100 \
        --worker a=http://127.0.0.1:8101 --worker b=http://127.0.0.1:8102 &
    python -m repro submit blur --fleet http://127.0.0.1:8100
"""

import tempfile
import threading

from repro.api import Session, Workload
from repro.fleet import AdmissionPolicy, FleetRouter, routing_token
from repro.service import AdmissionDeniedError, QueueFullError, ReproClient

#: Small knobs so the demo finishes in seconds.
SMALL = dict(iterations=4, window_sides=(1, 2, 3), max_depth=2,
             max_cones_per_depth=4, frame_width=640, frame_height=480)


def main() -> None:
    workloads = [Workload.from_algorithm(name, **SMALL)
                 for name in ("blur", "erode", "jacobi")]

    # ------------------------------------------------------------------ #
    # 1. placement is a pure function of the characterization key and the
    #    worker ring: two independently built fleets agree on every
    #    placement, before a single job is submitted.
    with FleetRouter.local(4) as first, FleetRouter.local(4) as second:
        placements = {
            workload.name: first.membership.ring.owner(
                routing_token(workload))
            for workload in workloads}
        agreed = all(
            second.membership.ring.owner(routing_token(w)) == placements[
                w.name] for w in workloads)
        print(f"placement:  {placements} "
              f"(two independent fleets agree: {agreed})")

    # ------------------------------------------------------------------ #
    # 2. shared-store warming: one direct session pays the synthesis cost,
    #    then a 2-worker fleet sharing the same store serves every request
    #    from disk — zero synthesizer invocations anywhere in the fleet.
    with tempfile.TemporaryDirectory() as store:
        Session(store=store).run(workloads[0])          # warm the store
        with FleetRouter.local(2, store=store) as fleet:
            client = ReproClient(fleet)
            client.submit(workloads[0]).result(timeout=60)
            stats = fleet.stats()
            print(f"warming:    served from the shared store — aggregate "
                  f"synthesis_runs={stats['aggregate']['synthesis_runs']}, "
                  f"store_disk_hits={stats['aggregate']['store_disk_hits']},"
                  f" store_shared={stats['store_shared']}")

        # 3. failover: land a burst on a paused fleet, kill one worker,
        #    and let the router replay its stranded jobs on the successor.
        with FleetRouter.local(2, store=store,
                               healthcheck_interval_s=0,
                               start=False) as fleet:
            client = ReproClient(fleet)
            handles = [client.submit(each) for each in workloads]
            victim = fleet.membership.ring.owner(
                routing_token(workloads[-1]))
            survivor = next(m.name for m in fleet.membership.all()
                            if m.name != victim)
            fleet.membership.get(survivor).server.start()
            fleet.membership.get(victim).server.close(drain=False)
            fleet.check_workers()
            pareto_sizes = [len(h.result(timeout=120).pareto)
                            for h in handles]
            stats = fleet.stats()["router"]
            print(f"failover:   killed {victim}; {stats['replays']} "
                  f"job(s) replayed on {survivor}, all "
                  f"{len(pareto_sizes)} results delivered")

    # ------------------------------------------------------------------ #
    # 4a. load shedding: a paused worker with a one-slot queue sheds the
    #     overflow with a Retry-After hint; the retrying client backs off
    #     (capped exponential + seeded jitter) and recovers once the
    #     worker starts draining.
    with FleetRouter.local(1, max_pending=1, start=False) as fleet:
        raw = ReproClient(fleet, retries=0)       # surface the shed
        raw.submit(workloads[0])                  # fills the only slot
        try:
            raw.submit(workloads[1])
        except QueueFullError as shed:
            print(f"shedding:   queue full -> retry after "
                  f"{shed.retry_after_s:.2f}s")
        retrying = ReproClient(fleet, retries=6, backoff_base_s=0.05,
                               backoff_cap_s=0.2, retry_jitter_seed=7)
        threading.Timer(
            0.15, fleet.membership.get("worker-0").server.start).start()
        handle = retrying.submit(workloads[1])    # retries until admitted
        handle.result(timeout=60)
        print(f"recovery:   retrying client got the result anyway "
              f"(router shed {fleet.stats()['router']['shed']} "
              f"submission(s) along the way)")

    # 4b. admission control: a guest-by-default fleet only accepts
    #     background work; operators keep every priority class.
    policy = AdmissionPolicy(default_role="guest")
    with FleetRouter.local(1, policy=policy, start=False) as fleet:
        try:
            fleet.submit(workloads[0], priority="interactive")
        except AdmissionDeniedError as denied:
            print(f"admission:  {denied}")
        receipt = fleet.submit(workloads[0], priority="interactive",
                               role="operator")
        print(f"admission:  operator admitted ({receipt['job_id']}), "
              f"counters {fleet.stats()['admission']['denied']} denied / "
              f"{fleet.stats()['admission']['admitted']} admitted")

    # ------------------------------------------------------------------ #
    # everything above is also scrape-able: workers and the router expose
    # Prometheus text metrics (GET /metrics) rendered from stats().
    with FleetRouter.local(2) as fleet:
        lines = [line for line in fleet.metrics_text().splitlines()
                 if line.startswith("repro_fleet_membership")]
        print("metrics:    " + "; ".join(lines))


if __name__ == "__main__":
    main()
